// Package service runs many concurrent anytime-optimization sessions in
// one process: the multi-tenant subsystem behind the moqod server. It
// combines
//
//   - a sharded session manager with a full lifecycle (create, poll
//     frontier, set bounds, select plan, close, idle expiry) — sessions
//     hash by ID onto GOMAXPROCS-sized shards so registry access never
//     serializes on one lock,
//   - per-shard fair-share schedulers whose worker pools time-slice
//     bounded refinement quanta across sessions, prioritizing sessions
//     whose bounds just changed (their resolution resets to 0 per the
//     paper's regime rule) over idle-refining ones, with bounded work
//     stealing so an idle shard drains a loaded shard's cold queue, and
//   - a two-tier warm-start plan cache sharded by canonical query
//     digest, so a session on an already-seen query shape restores
//     cached scan and join plan sets instead of rebuilding them from
//     scratch — and a session on a *new* shape that is isomorphic to a
//     cached one (the same join graph under a permutation of table
//     IDs, query.CanonicalFingerprint) restores the cached snapshot
//     rewritten onto its labeling (core.Snapshot.Remap) — without
//     cache hits serializing either. With Config.StoreDir set, the
//     cache is backed by a persistent snapshot store (internal/store):
//     admitted snapshots are written to disk off the hot path and
//     replayed into both tiers at the next New on the same directory,
//     so warm starts survive process restarts (DESIGN.md D12).
//
// The paper's interactive-speed guarantee is per optimizer invocation;
// this package extends it to many users by making one invocation
// (session.Step) the preemption granularity: a popped cold session runs
// up to Config.Quantum consecutive steps to amortize queue round-trips,
// but a hot arrival (bounds change, new session) cuts the quantum short
// at the next step boundary, so no tenant can monopolize a worker for
// longer than one bounded refinement step past a hot arrival.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/eventlog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/session"
	"repro/internal/store"
	"repro/internal/trace"
)

// PersistPolicy selects when the snapshot store (Config.StoreDir)
// receives cache-admitted snapshots.
type PersistPolicy int

const (
	// PersistOnPut (the default) writes through on every cache
	// admission: a snapshot survives even a hard kill once the
	// background writer has flushed it.
	PersistOnPut PersistPolicy = iota
	// PersistOnEvict defers persistence to LRU eviction plus a full
	// cache sweep at Shutdown: fewer disk writes while the service
	// runs, but snapshots are lost if the process dies without a
	// graceful shutdown.
	PersistOnEvict
)

// Config configures a Service. Opt is required; zero values elsewhere
// get defaults.
type Config struct {
	// Opt is the per-session optimizer configuration. Hooks must be
	// unset: they would be invoked concurrently from many workers.
	Opt core.Config

	// Workers is the total refinement worker-pool size, distributed
	// across the shards; defaults to runtime.GOMAXPROCS(0).
	Workers int

	// Shards is the number of manager/scheduler shards sessions hash
	// onto; defaults to runtime.GOMAXPROCS(0) and is clamped to
	// Workers (a shard needs at least one worker). 1 restores the
	// single-queue behaviour.
	Shards int

	// Quantum is the maximum number of consecutive refinement steps a
	// popped cold session runs before re-entering its queue (amortizing
	// queue round-trips); a pending hot session preempts the quantum at
	// the next step boundary. Hot pops always run exactly one step —
	// their next step is the most user-visible one, so they return to
	// the queue immediately. 0 defaults to 4; 1 restores strict
	// one-step-per-pop round-robin.
	Quantum int

	// MaxActiveSessions bounds the number of live sessions; Create
	// fails with ErrOverloaded at the limit. 0 means unlimited. The
	// check reads sharded gauges without a global lock, so concurrent
	// creates can overshoot the limit by at most the create
	// concurrency — admission control is load shedding, not a hard
	// resource cap.
	MaxActiveSessions int

	// MaxQueueDepth bounds the combined scheduler backlog (queued, not
	// yet running sessions) across shards; Create fails with
	// ErrOverloaded at the limit. 0 means unlimited. Approximate under
	// concurrency, like MaxActiveSessions.
	MaxQueueDepth int

	// IdleTimeout expires sessions with no client interaction for this
	// long; defaults to 5 minutes. Negative disables expiry.
	IdleTimeout time.Duration

	// SessionDeadline bounds a session's total wall-clock lifetime:
	// live sessions older than this transition to TimedOut on the next
	// janitor sweep, regardless of client activity (waiters are woken,
	// not honored — the deadline is a hard resource cap). 0 disables.
	SessionDeadline time.Duration

	// JanitorInterval is the expiry sweep period; defaults to
	// IdleTimeout/4.
	JanitorInterval time.Duration

	// CacheCapacity bounds the warm-start cache (snapshots) across all
	// cache shards; 0 defaults to 256, negative disables the cache.
	CacheCapacity int

	// StoreDir, when non-empty, enables the persistent snapshot store
	// (internal/store) rooted at this directory: cache-admitted
	// snapshots are written to disk off the hot path per StorePolicy,
	// and New replays the surviving records into both cache tiers, so
	// a restarted service (or a fresh process on the same directory)
	// keeps its warm starts. Requires the cache (CacheCapacity >= 0).
	StoreDir string

	// StorePolicy selects the persistence trigger; see PersistPolicy.
	StorePolicy PersistPolicy

	// StoreOptions tunes the store's segment size, compaction
	// threshold and writer queue; Dir and CfgEcho are set by the
	// service. Zero values take the store's defaults.
	StoreOptions store.Options

	// Stats, when set, is the versioned statistics catalog whose epoch
	// labels snapshots exported by this service. The service never reads
	// table statistics from it (queries carry their own catalog); it
	// only stamps and raises the epoch so drift observability stays
	// monotonic across statistics updates and restarts. Nil leaves every
	// snapshot labeled epoch 0.
	Stats *catalog.Versioned

	// DriftThreshold is the relative-change boundary between small drift
	// (re-cost the cached plan sets and trust them) and large drift
	// (re-cost, then resume refinement with regenerated alternatives);
	// <= 0 uses core.DefaultDriftThreshold.
	DriftThreshold float64

	// DefaultBounds are the initial cost bounds of new sessions; nil
	// means unbounded.
	DefaultBounds cost.Vector

	// SlowSession, when positive, invokes SlowSessionLog for every
	// session whose creation→terminal wall time reaches the threshold,
	// handing over the session's full lifecycle trace (moqod wires this
	// to the -slow-session flag and logs the formatted trace).
	SlowSession time.Duration

	// SlowSessionLog receives slow sessions' traces; nil disables the
	// hook even when SlowSession is set. Called once per terminal
	// transition, outside all service locks — the callback may block
	// (e.g. on a log write) without stalling workers holding locks.
	SlowSessionLog func(total time.Duration, d trace.Data)

	// FaultHook, when set, runs at the top of every refinement step
	// (under m.mu, inside the step's panic recovery) with the session ID
	// and its completed-step count — the injection point the panic-
	// isolation tests use to make a chosen session's step panic. Nil in
	// production; the step path pays one nil check for it (D13).
	FaultHook func(id string, step int)

	// Events, when set, receives the service's structured lifecycle
	// events (session created/finished, drain progress) — never emitted
	// from the refinement step path (DESIGN.md D17). Nil disables
	// emission; the eventlog methods are nil-safe so call sites carry no
	// checks.
	Events *eventlog.Log

	// ReplaySource labels the provenance of cache entries replayed from
	// the store at New: "replay" (the default) for a node restarting on
	// its own directory, "bootstrap" when the segments were pulled from
	// a peer. Sessions warm-starting from such an entry report the label
	// in their provenance (e.g. "exact-bootstrap").
	ReplaySource string
}

// ShardStats are one shard's gauges and counters.
type ShardStats struct {
	// Workers is the shard's worker count.
	Workers int
	// Sessions is the shard's current live-session count.
	Sessions int
	// Queued is the shard's current run-queue length.
	Queued int
	// Steps counts refinement steps executed by this shard's workers
	// (including steps on sessions stolen from other shards).
	Steps uint64
	// Pops counts queue pops serviced by this shard's workers; the
	// Steps/Pops ratio shows the quantum's round-trip amortization.
	Pops uint64
	// Steals counts cold sessions this shard's workers took from
	// loaded peers instead of sleeping.
	Steals uint64
	// Preempts counts cold quanta cut short by a hot arrival.
	Preempts uint64
	// Rejected counts admissions refused while this shard was the
	// hottest (most loaded) one — the per-shard attribution of the
	// service-wide Rejected counter.
	Rejected uint64
}

// Stats are cumulative service counters plus current gauges.
type Stats struct {
	// Created, Selected, Closed and Expired count session lifecycle
	// transitions since service start.
	Created, Selected, Closed, Expired uint64
	// Failed counts sessions killed by a recovered step panic (or a
	// poisoned warm start); TimedOut counts sessions reclaimed at their
	// wall-clock deadline.
	Failed, TimedOut uint64
	// Poisoned counts warm-start sources quarantined after a restore or
	// first post-restore step failure (evicted from the cache and
	// superseded in the store).
	Poisoned uint64
	// Rejected counts Create calls refused by admission control.
	Rejected uint64
	// Steps counts scheduler-executed refinement steps.
	Steps uint64
	// WarmStarts counts sessions created from a cached snapshot
	// (exact and isomorphic combined).
	WarmStarts uint64
	// IsoWarmStarts counts the subset of WarmStarts that restored a
	// snapshot cached under a different table labeling, rewritten via
	// the canonical tier (cross-shape reuse).
	IsoWarmStarts uint64
	// DriftRecosted counts sessions warm-started from a pre-drift
	// snapshot whose statistics drift classified small: the cached plan
	// sets were re-costed under the live statistics and trusted.
	DriftRecosted uint64
	// DriftResumed counts warm starts across large statistics drift:
	// the snapshot was re-costed and refinement resumed with the pair
	// memo dropped, regenerating alternatives against the cached
	// context.
	DriftResumed uint64
	// DriftQuarantined counts stale-tier hits whose drift classified
	// incompatible (topology, index or sampling-offer changes) or whose
	// re-cost failed: the entry was quarantined and the session
	// cold-started.
	DriftQuarantined uint64
	// StatsEpoch is the current statistics-epoch label (0 when no
	// versioned catalog is configured).
	StatsEpoch uint64
	// RemapTotal is the cumulative wall time spent rewriting snapshots
	// for isomorphic restores (at session creation, never on the
	// refinement hot path). Durations marshal as raw nanosecond
	// integers, so the JSON name carries the unit explicitly.
	RemapTotal time.Duration `json:"RemapTotalNs"`
	// Active is the current number of live sessions.
	Active int
	// Queued is the current combined scheduler run-queue length.
	Queued int
	// StepGapP99 is the starvation audit: the 99th percentile, across
	// recent and live sessions, of each session's maximum start-to-start
	// interval between consecutive refinement steps — how long the most
	// starved sessions waited for service while runnable. Serialized in
	// explicit nanoseconds, like RemapTotal.
	StepGapP99 time.Duration `json:"StepGapP99Ns"`
	// Cache summarizes the warm-start cache across its shards (zero
	// value if disabled).
	Cache CacheStats
	// CacheShards holds the per-cache-shard breakdown (cache shards
	// are keyed by canonical digest and independent of the
	// scheduler shards in Shards). The monotonic Puts/Evictions split
	// per shard shows which digest ranges churn at capacity.
	CacheShards []CacheStats
	// Store summarizes the persistent snapshot store (zero value when
	// StoreDir is unset).
	Store store.Stats
	// Draining reports that Drain has started: new sessions are being
	// refused with ErrDraining. It never goes false again.
	Draining bool
	// DrainConverged and DrainCheckpointed split the live sessions the
	// drain found: those that reached their target inside the grace
	// window versus those checkpointed mid-refinement to the store.
	DrainConverged, DrainCheckpointed uint64
	// Shards holds the per-shard breakdown.
	Shards []ShardStats
}

// ErrFrontierMoved reports that refinement steps changed the frontier
// between the poll a Select index refers to and the Select itself; the
// client should re-poll and re-decide.
var ErrFrontierMoved = errors.New("service: frontier moved since poll")

// ErrOverloaded reports that admission control refused a new session:
// the service is at MaxActiveSessions or MaxQueueDepth. Clients should
// retry after a backoff (moqod maps this to HTTP 429 with Retry-After).
var ErrOverloaded = errors.New("service: overloaded")

// OverloadError is the structured admission refusal: errors.Is(err,
// ErrOverloaded) still matches, and moqod serializes the fields into
// the 429 JSON body so clients can log which limit tripped and which
// shard was hottest.
type OverloadError struct {
	// Kind names the limit that refused the create: "sessions"
	// (MaxActiveSessions) or "queue" (MaxQueueDepth).
	Kind string
	// N and Limit are the observed load and the configured cap.
	N, Limit int
	// Shard is the hottest shard (most sessions plus queue entries) at
	// refusal time — where the congestion lives.
	Shard int
}

// Error formats the refusal; the prefix matches errors.Is via Unwrap.
func (e *OverloadError) Error() string {
	noun := "active"
	if e.Kind == "queue" {
		noun = "queued"
	}
	return fmt.Sprintf("%v: %d %s sessions (limit %d)", ErrOverloaded, e.N, noun, e.Limit)
}

// Unwrap ties the typed error to the ErrOverloaded sentinel.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Status is a poll result: the session's state and current frontier.
type Status struct {
	// ID is the session ID.
	ID string
	// Query is the session's query display name.
	Query string
	// State is the lifecycle state.
	State State
	// WarmStarted reports whether the session began from the cache.
	WarmStarted bool
	// Drift reports how statistics drift resolved for this session:
	// "recosted" (small drift, cached plans re-costed), "resumed" (large
	// drift, refinement resumed over re-costed state), "quarantined"
	// (incompatible drift or failed re-cost; the session cold-started),
	// or "" when no drift was involved.
	Drift string
	// Provenance names where the session's plan state came from:
	// "cold", "exact", "iso", "recost" or "resume", with a
	// "-replay"/"-bootstrap" suffix when the satisfying cache entry was
	// itself replayed from the local store or pulled from a peer.
	Provenance string
	// Resolution is the last step's resolution (-1 before any step).
	Resolution int
	// Steps is the number of refinement steps executed so far.
	Steps int
	// Bounds is the session's current bound vector.
	Bounds cost.Vector
	// Frontier is the current visualization input (shared immutable
	// plan nodes; callers must not mutate). The nodes are backed by the
	// session's arena: in-process callers keeping them past the
	// session's lifetime should copy what they need (Select returns a
	// detached copy for exactly this reason); callers serializing to a
	// wire format (moqod) are unaffected.
	Frontier []*plan.Node
	// FirstFrontier is the creation→first-non-empty-frontier latency
	// (0 until one exists).
	FirstFrontier time.Duration
	// MaxStepGap is the session's largest observed interval between
	// consecutive refinement steps (the per-session starvation metric).
	MaxStepGap time.Duration
	// Err is the captured failure of a Failed session (a recovered step
	// panic's value); empty otherwise. The stack stays server-side, in
	// the logs and the trace archive.
	Err string
}

// shard pairs one slice of the session registry with the scheduler that
// serves it. A session's shard is fixed at creation (hash of its ID),
// so every registry and queue operation for it touches only this
// shard's locks.
type shard struct {
	mgr   *manager
	sched *scheduler
}

// Service is the concurrent anytime-optimization subsystem. Create one
// with New and release it with Shutdown.
type Service struct {
	cfg        Config
	shards     []*shard
	caches     []*PlanCache // fingerprint-sharded; nil when disabled
	store      *store.Store // persistent snapshot store; nil when disabled
	quantum    int
	shardSizes []int          // workers per shard (ShardStats)
	obs        *Observability // metric instruments + trace archive (never nil)

	// statsMu serializes Stats callers so the starvation-audit scratch
	// (gapScratch here, each manager's liveScratch) can be reused
	// without racing; it is never held with any shard lock.
	statsMu    sync.Mutex
	gapScratch []time.Duration

	nextID        atomic.Uint64
	created       atomic.Uint64
	selected      atomic.Uint64
	closed        atomic.Uint64
	expired       atomic.Uint64
	failed        atomic.Uint64
	timedOut      atomic.Uint64
	poisoned      atomic.Uint64
	rejected      atomic.Uint64
	steps         atomic.Uint64
	warmStarts    atomic.Uint64
	isoWarmStarts atomic.Uint64
	driftRecosted atomic.Uint64
	driftResumed  atomic.Uint64
	driftQuar     atomic.Uint64
	remapNS       atomic.Uint64
	stopping      atomic.Bool
	janitorStop   chan struct{}

	// Drain state (DESIGN.md D16). draining flips once, before any other
	// drain work, so Create refuses new sessions for the entire window in
	// which in-flight ones converge or checkpoint; it never flips back.
	// drainMu/drainDone make Drain idempotent: the first caller runs the
	// drain, later callers block until it finishes and read the same
	// counts.
	draining          atomic.Bool
	drainMu           sync.Mutex
	drainDone         chan struct{}
	drainConverged    atomic.Uint64
	drainCheckpointed atomic.Uint64
}

// New validates the configuration, starts the sharded worker pools and
// the idle janitor, and returns the running service.
func New(cfg Config) (*Service, error) {
	if cfg.Opt.Hooks.PlanGenerated != nil || cfg.Opt.Hooks.PairCombined != nil ||
		cfg.Opt.Hooks.CandidateRetrieved != nil {
		return nil, fmt.Errorf("service: Opt.Hooks must be unset (hooks are not concurrency-safe)")
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("service: Workers %d < 1", cfg.Workers)
	}
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("service: Shards %d < 1", cfg.Shards)
	}
	if cfg.Shards > cfg.Workers {
		cfg.Shards = cfg.Workers // every shard needs at least one worker
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 4
	}
	if cfg.Quantum < 1 {
		return nil, fmt.Errorf("service: Quantum %d < 1", cfg.Quantum)
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.JanitorInterval <= 0 {
		// Sweep at a quarter of the tightest enabled window so neither
		// idle expiry nor the session deadline overshoots by more than
		// ~25% (the janitor also runs with expiry disabled when only a
		// deadline is configured).
		base := cfg.IdleTimeout
		if base <= 0 || (cfg.SessionDeadline > 0 && cfg.SessionDeadline < base) {
			base = cfg.SessionDeadline
		}
		cfg.JanitorInterval = base / 4
	}
	s := &Service{cfg: cfg, quantum: cfg.Quantum, janitorStop: make(chan struct{})}
	// The instruments must exist before any worker can run a step
	// (runSteps records into them unconditionally).
	s.obs = newObservability(cfg.Shards)
	if cfg.CacheCapacity >= 0 {
		total := cfg.CacheCapacity
		if total < 1 {
			total = 256
		}
		// Never more cache shards than capacity: a tiny cache split
		// across many single-entry shards would thrash two popular
		// shapes hashing to the same shard while the rest sit empty.
		// The remainder spreads one entry at a time so the aggregate
		// capacity equals the configured budget exactly.
		n := cfg.Shards
		if n > total {
			n = total
		}
		s.caches = make([]*PlanCache, n)
		base, extra := total/n, total%n
		for i := range s.caches {
			c := base
			if i < extra {
				c++
			}
			s.caches[i] = NewPlanCache(c)
		}
	}
	if cfg.StoreDir != "" {
		if s.caches == nil {
			return nil, fmt.Errorf("service: StoreDir requires the warm-start cache (CacheCapacity >= 0)")
		}
		echo, err := core.ConfigFingerprint(cfg.Opt)
		if err != nil {
			return nil, fmt.Errorf("service: StoreDir needs a valid optimizer config: %w", err)
		}
		so := cfg.StoreOptions
		so.Dir = cfg.StoreDir
		so.CfgEcho = echo
		if so.Events == nil {
			so.Events = cfg.Events
		}
		st, err := store.Open(so)
		if err != nil {
			return nil, err
		}
		s.store = st
		// Pre-populate both cache tiers from the records that survived
		// the scan, in write order, so the canonical tier ends up with
		// each class's most recently persisted representative — the
		// same state live Puts would have left behind. Decode failures
		// are skipped inside Replay (degrade to cold, never fail
		// startup). The eviction hook is installed only afterwards:
		// replay evicting past capacity must not re-persist records
		// that are already on disk.
		replaySource := cfg.ReplaySource
		if replaySource == "" {
			replaySource = "replay"
		}
		_ = st.Replay(func(r store.Record) bool {
			if c := s.cacheFor(r.CanonFP); c != nil {
				c.Put(r.FP, r.CanonFP, r.StructFP, r.Perm, r.Snap)
				// Replayed entries are on disk by definition; marking
				// them clean keeps eviction and the shutdown sweep
				// from writing them straight back.
				c.MarkClean(r.FP)
				c.SetOrigin(r.FP, replaySource)
			}
			return true
		})
		// Epoch labels must stay monotonic across restarts: raise the
		// versioned catalog to the newest label the store has seen, so a
		// post-restart statistics update never reuses a label that
		// already stamps persisted records.
		if cfg.Stats != nil {
			cfg.Stats.EnsureAtLeast(st.MaxStatsEpoch())
		}
		if cfg.StorePolicy == PersistOnEvict {
			for _, c := range s.caches {
				// Blocking on a backlogged writer (bounded by its queue
				// draining) beats the non-blocking Put here: an evicted
				// entry's snapshot exists nowhere else, so shedding it
				// would lose the very state this policy exists to keep.
				c.OnEvict(st.PutBlocking)
			}
		}
	}
	// Build every shard's scheduler and link the peer set before any
	// worker starts, so stealing never observes a partial peer slice.
	scheds := make([]*scheduler, cfg.Shards)
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		scheds[i] = newScheduler(i)
		s.shards[i] = &shard{mgr: newManager(), sched: scheds[i]}
	}
	for _, sc := range scheds {
		sc.link(scheds)
	}
	s.shardSizes = make([]int, cfg.Shards)
	base, extra := cfg.Workers/cfg.Shards, cfg.Workers%cfg.Shards
	for i, sc := range scheds {
		n := base
		if i < extra {
			n++
		}
		s.shardSizes[i] = n
		sc.start(n, s.runSteps)
	}
	if cfg.IdleTimeout > 0 || cfg.SessionDeadline > 0 {
		go s.janitor()
	} else {
		close(s.janitorStop)
	}
	s.registerMetrics()
	return s, nil
}

// shardIndex hashes a key (session ID or query fingerprint) onto a
// shard with FNV-1a.
func shardIndex(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// shardFor returns the shard owning the session ID.
func (s *Service) shardFor(id string) *shard {
	return s.shards[shardIndex(id, len(s.shards))]
}

// cacheFor returns the cache shard owning the query's canonical
// digest, or nil when the cache is disabled. Sharding by canonical
// digest (not exact fingerprint) puts every member of an isomorphism
// class on the same shard, so cross-shape lookups stay shard-local.
func (s *Service) cacheFor(canonFp string) *PlanCache {
	if s.caches == nil {
		return nil
	}
	return s.caches[shardIndex(canonFp, len(s.caches))]
}

// ErrShutdown reports that the service stopped while the call was in
// progress (e.g. a WaitTarget whose session can no longer converge
// because the workers are gone).
var ErrShutdown = errors.New("service: shut down")

// Shutdown stops the workers and the janitor; in-flight steps finish
// first. Sessions are not drained — callers wanting final state poll
// before shutting down. Goroutines blocked in WaitTarget are released
// with ErrShutdown.
func (s *Service) Shutdown() {
	select {
	case <-s.janitorStop:
	default:
		close(s.janitorStop)
	}
	first := !s.stopping.Swap(true)
	// Wake blocked WaitTarget callers: with the workers stopping, a
	// Refining session may never transition again.
	for _, sh := range s.shards {
		for _, m := range sh.mgr.all() {
			m.mu.Lock()
			if m.cond != nil {
				m.cond.Broadcast()
			}
			m.mu.Unlock()
		}
	}
	for _, sh := range s.shards {
		sh.sched.stop()
	}
	if s.store != nil && first {
		// Workers are stopped: no further cache puts can race the
		// sweep. Under persist-on-evict, entries still in the cache
		// were never written; persist them now, then flush and close
		// (a graceful moqod shutdown must not lose warm state).
		if s.cfg.StorePolicy == PersistOnEvict {
			for _, c := range s.caches {
				c.EachDirty(s.store.PutBlocking)
			}
		}
		// Close flushes the writer queue; errors are best effort — the
		// snapshots still live in this process's cache, only restart
		// durability degraded.
		_ = s.store.Close()
	}
}

func (s *Service) janitor() {
	t := time.NewTicker(s.cfg.JanitorInterval)
	defer t.Stop()
	ttl := s.cfg.IdleTimeout
	if ttl < 0 {
		ttl = 0 // expiry disabled; the janitor runs for the deadline
	}
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			for _, sh := range s.shards {
				expired, timedOut := sh.mgr.sweep(ttl, s.cfg.SessionDeadline)
				s.expired.Add(uint64(len(expired)))
				s.timedOut.Add(uint64(len(timedOut)))
				// sweep already removed the sessions and recorded their
				// starvation gaps; what remains is the terminal
				// observability (trace archive, end-to-end histogram,
				// slow-session hook).
				for _, m := range expired {
					s.observeEnd(m, trace.KindExpired)
				}
				for _, m := range timedOut {
					s.observeEnd(m, trace.KindTimedOut)
				}
			}
		}
	}
}

// activeSessions returns the current live-session count across shards.
func (s *Service) activeSessions() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.mgr.count()
	}
	return n
}

// queuedSessions returns the combined scheduler backlog across shards.
func (s *Service) queuedSessions() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.sched.queueLen()
	}
	return n
}

// reject counts one admission refusal — service-wide and against the
// hottest shard — and builds the structured overload error.
func (s *Service) reject(kind string, n, lim int) error {
	s.rejected.Add(1)
	hot := s.hottestShard()
	s.shards[hot].sched.rejects.Add(1)
	return &OverloadError{Kind: kind, N: n, Limit: lim, Shard: hot}
}

// hottestShard returns the most loaded shard (live sessions plus queue
// entries) — the congestion an overload refusal names.
func (s *Service) hottestShard() int {
	best, bestLoad := 0, -1
	for i, sh := range s.shards {
		if load := sh.mgr.count() + sh.sched.queueLen(); load > bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// restoreFromSnapshot builds an optimizer from a cached snapshot,
// converting a panic — a corrupt-but-CRC-valid record — into an error
// so Create can quarantine the source instead of crashing (D14).
func restoreFromSnapshot(q *query.Query, cfg core.Config, snap *core.Snapshot) (opt *core.Optimizer, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: snapshot restore panicked: %v", r)
		}
	}()
	return core.NewOptimizerFromSnapshot(q, cfg, snap)
}

// quarantine buries a poisoned warm-start source: the entry leaves
// every cache tier and its store record is superseded by a tombstone,
// so neither this process nor any restart warm-starts from it again
// (D14: poison marking is monotonic and persisted).
func (s *Service) quarantine(srcFP, canonFp string) {
	if c := s.cacheFor(canonFp); c != nil {
		c.Quarantine(srcFP)
	}
	if s.store != nil {
		s.store.Quarantine(srcFP)
	}
	s.poisoned.Add(1)
}

// statsEpoch returns the current statistics-epoch label (0 without a
// versioned catalog).
func (s *Service) statsEpoch() uint64 {
	if s.cfg.Stats == nil {
		return 0
	}
	return s.cfg.Stats.Version()
}

// lookupStale probes every cache shard's structural tier for a
// pre-drift snapshot of structFp. Cache shards are keyed by canonical
// digest, and the same structure under different statistics hashes to
// different canonical shards, so the probe cannot stay shard-local; it
// runs only after both real tiers missed, on the session-creation path.
func (s *Service) lookupStale(structFp string) (snap *core.Snapshot, srcFP, srcCanon string, ok bool) {
	if s.caches == nil || structFp == "" {
		return nil, "", "", false
	}
	for _, c := range s.caches {
		if snap, srcFP, srcCanon, ok = c.LookupStale(structFp); ok {
			return snap, srcFP, srcCanon, true
		}
	}
	return nil, "", "", false
}

// Create registers a new session for q and schedules its first
// refinement step at hot priority on its shard. If the warm-start cache
// holds a snapshot for q's exact fingerprint the session resumes from
// it verbatim; if it only holds one for an isomorphic query (equal
// canonical digest, different table labeling) the snapshot is rewritten
// onto q's labels (Snapshot.Remap) and the session resumes from the
// rewritten copy. At MaxActiveSessions or MaxQueueDepth, Create fails
// with ErrOverloaded before any optimizer state is built.
func (s *Service) Create(q *query.Query) (string, error) {
	callStart := time.Now()
	if q == nil {
		return "", fmt.Errorf("service: nil query")
	}
	if s.draining.Load() {
		// Draining is monotonic: once flipped, no session is ever
		// admitted again, so nothing created here can race the drain's
		// checkpoint sweep or the store flush behind it.
		return "", ErrDraining
	}
	if lim := s.cfg.MaxActiveSessions; lim > 0 {
		if n := s.activeSessions(); n >= lim {
			return "", s.reject("sessions", n, lim)
		}
	}
	if lim := s.cfg.MaxQueueDepth; lim > 0 {
		if n := s.queuedSessions(); n >= lim {
			return "", s.reject("queue", n, lim)
		}
	}
	fp := q.Fingerprint()
	var canonFp, structFp string
	var canonPerm []int
	if s.caches != nil {
		// One canonicalization per session creation; the digest also
		// picks the cache shard, so isomorphic queries meet there. The
		// structural digest feeds the drift tier: it survives statistics
		// changes that move both of the other keys.
		canonFp, canonPerm = q.CanonicalFingerprint()
		structFp = q.StructuralFingerprint()
	}
	var sess *session.Session
	var remapDur, recostDur time.Duration
	var warmSrcFP, warmSrcCanon, drift string
	warm, warmExact, preSnapshotted := false, false, false
	var driftClass core.DriftClass
	if cache := s.cacheFor(canonFp); cache != nil {
		if snap, srcPerm, srcFP, exact, ok := cache.Lookup(fp, canonFp); ok {
			if !exact {
				// Cross-shape hit: rewrite the cached snapshot from its
				// source labeling onto q's. Failures (which would take a
				// digest collision) just degrade to a cold start.
				src := snap
				snap = nil
				if perm, err := query.ComposeRemap(srcPerm, canonPerm); err == nil {
					t0 := time.Now()
					remapped, err := src.Remap(perm)
					remapDur = time.Since(t0)
					s.remapNS.Add(uint64(remapDur))
					s.obs.Remap.ObserveDuration(remapDur)
					if err == nil {
						snap = remapped
					}
				}
			}
			if snap != nil {
				// A cached entry passed scan-time CRC and config checks,
				// so a restore that still fails (or panics on a corrupt-
				// but-CRC-valid record) is poison: quarantine the source
				// entry — evict from every cache tier, supersede on disk
				// — and fall back to a cold start. The next convergence
				// re-exports a fresh snapshot, resetting the lineage;
				// the Create itself never fails for a bad cache entry.
				if opt, rerr := restoreFromSnapshot(q, s.cfg.Opt, snap); rerr == nil {
					var err error
					sess, err = session.NewWithOptimizer(opt, s.cfg.DefaultBounds)
					if err != nil {
						return "", err
					}
					warm = true
					warmExact = exact
					warmSrcFP = srcFP
					warmSrcCanon = canonFp
					s.warmStarts.Add(1)
					if !exact {
						s.isoWarmStarts.Add(1)
					}
				} else {
					s.quarantine(srcFP, canonFp)
				}
			}
		} else if stale, srcFP, srcCanon, sok := s.lookupStale(structFp); sok {
			// Both real tiers missed, but a snapshot with q's exact
			// structure is cached under different statistics: the stats
			// drifted between its export and this create. Classify the
			// drift against the snapshot's recorded values and re-cost,
			// resume or quarantine accordingly (DESIGN.md D15) — never
			// serve plan state costed under superseded statistics as-is.
			class, mag := stale.ClassifyDrift(q, s.cfg.DriftThreshold)
			driftClass = class
			s.obs.DriftMagnitude.Observe(int64(mag * 1000))
			quarantined := false
			if class == core.DriftSmall || class == core.DriftLarge || class == core.DriftNone {
				t0 := time.Now()
				recosted, rerr := stale.Recost(q, s.cfg.Opt)
				recostDur = time.Since(t0)
				s.obs.Recost.ObserveDuration(recostDur)
				if rerr == nil {
					recosted.SetStatsEpoch(s.statsEpoch())
					if class == core.DriftLarge {
						// The pruning decisions baked into the cached
						// sets happened under the old statistics; drop
						// the pair memo so refinement regenerates every
						// alternative and re-prunes it against the
						// re-costed context.
						recosted.DropPairs()
					}
					if opt, rerr := restoreFromSnapshot(q, s.cfg.Opt, recosted); rerr == nil {
						var err error
						sess, err = session.NewWithOptimizer(opt, s.cfg.DefaultBounds)
						if err != nil {
							return "", err
						}
						warm = true
						warmSrcFP = srcFP
						warmSrcCanon = srcCanon
						s.warmStarts.Add(1)
						if class == core.DriftLarge {
							s.driftResumed.Add(1)
							drift = "resumed"
						} else {
							s.driftRecosted.Add(1)
							drift = "recosted"
							// Small drift: the re-costed plan sets are
							// exactly what this session's convergence
							// would re-export. Admit them under q's own
							// keys now — the next identical query hits
							// the exact tier — and skip the session's
							// own export.
							cache.Put(fp, canonFp, structFp, canonPerm, recosted)
							if s.store != nil && s.cfg.StorePolicy == PersistOnPut {
								s.store.Put(fp, canonFp, structFp, canonPerm, recosted)
							}
							preSnapshotted = true
						}
					} else {
						quarantined = true
					}
				} else {
					// Classification said value-only drift but re-costing
					// still failed (e.g. a corrupt-but-CRC-valid record):
					// the entry is poison.
					quarantined = true
				}
			} else {
				// Incompatible: the table set, topology, index
				// availability or sampling offers changed — the cached
				// alternatives no longer enumerate q's search space in
				// either direction.
				quarantined = true
			}
			if quarantined {
				s.quarantine(srcFP, srcCanon)
				s.driftQuar.Add(1)
				drift = "quarantined"
			}
		}
	}
	if sess == nil {
		var err error
		sess, err = session.New(q, s.cfg.Opt, s.cfg.DefaultBounds)
		if err != nil {
			return "", err
		}
	}
	now := time.Now()
	id := fmt.Sprintf("s-%d", s.nextID.Add(1))
	// Provenance names where this session's plan state came from. The
	// base label mirrors the cache-tier outcome; when the satisfying
	// entry itself came off disk, its origin ("replay"/"bootstrap")
	// rides along as a suffix so a poll or trace distinguishes state
	// minted this process from state inherited across a restart or
	// pulled from a peer.
	prov := "cold"
	switch {
	case warmExact:
		prov = "exact"
	case warm && drift == "recosted":
		prov = "recost"
	case warm && drift == "resumed":
		prov = "resume"
	case warm:
		prov = "iso"
	}
	if warm && warmSrcFP != "" {
		if c := s.cacheFor(warmSrcCanon); c != nil {
			if origin := c.Origin(warmSrcFP); origin != "" {
				prov += "-" + origin
			}
		}
	}
	m := &managed{
		id:         id,
		fp:         fp,
		canonFp:    canonFp,
		structFp:   structFp,
		canonPerm:  canonPerm,
		shard:      shardIndex(id, len(s.shards)),
		sess:       sess,
		state:      Refining,
		lastTouch:  now,
		created:    now,
		warm:       warm,
		srcFP:      warmSrcFP,
		srcCanon:   warmSrcCanon,
		drift:      drift,
		provenance: prov,
		statsEpoch: s.statsEpoch(),
		// An exact warm restore re-converging under the default bounds
		// ends in the very state the cached snapshot holds, so
		// re-exporting (a full deep copy, plus a store write under
		// persist-on-put) buys nothing; skip it. A small-drift restore
		// already admitted its re-costed state under this session's own
		// keys, so it skips too. Isomorphic restores still export —
		// they seed the exact tier for their own labeling — and
		// SetBounds clears the flag, so a new regime's convergence
		// always refreshes the cache.
		snapshotted: warmExact || preSnapshotted,
	}
	m.cond = sync.NewCond(&m.mu)
	// Seed the lifecycle trace with the creation-path spans
	// retroactively — the session (and its ID) did not exist while they
	// happened. No lock needed yet: m is not published until mgr.add.
	tr := trace.Get(id, now)
	tr.AppendAt(trace.KindAdmit, 0, now.Sub(callStart), int64(m.shard))
	if s.caches != nil {
		switch {
		case warmExact:
			tr.AppendAt(trace.KindCacheExact, 0, 0, 0)
		case warm && drift == "":
			tr.AppendAt(trace.KindCacheIso, 0, 0, 0)
		case warm:
			// Drift warm start: the stale-tier hit is its own span below.
		default:
			tr.AppendAt(trace.KindCacheMiss, 0, 0, 0)
		}
		if remapDur > 0 {
			tr.AppendAt(trace.KindRemap, 0, remapDur, 0)
		}
		if drift != "" {
			tr.AppendAt(trace.KindDrift, 0, recostDur, int64(driftClass))
		}
	}
	tr.SetProvenance(prov)
	m.trace = tr
	sh := s.shards[m.shard]
	sh.mgr.add(m)
	s.created.Add(1)
	sh.sched.enqueue(m, true)
	s.cfg.Events.EmitSession(eventlog.LevelInfo, "service", "session created", id, fp, Refining.String(),
		eventlog.F("provenance", prov), eventlog.Fint("shard", int64(m.shard)))
	return m.id, nil
}

// runSteps executes one scheduling quantum for a popped session and
// decides its next scheduling: re-enqueue cold on its owning shard
// while refining, park it once the regime reaches maximal resolution
// (exporting a snapshot to the warm-start cache the first time), drop
// it when terminal. sc is the executing scheduler — the owner's, or a
// thief's when the session was stolen.
//
// Hot pops run exactly one step (the regime's coarsest, most
// user-visible one) and requeue, keeping first-frontier latency low.
// Cold pops run up to the configured quantum of consecutive steps to
// amortize queue round-trips, releasing m.mu between steps so polls
// never wait for a whole batch, and re-check both the executing and the
// owning shard for hot arrivals at every step boundary — a waiting hot
// session preempts the quantum.
func (s *Service) runSteps(sc *scheduler, m *managed, hot bool) {
	owner := s.shards[m.shard].sched
	k := s.quantum
	if hot {
		k = 1
	}
	// batchStart/lastStart are step-start offsets from the trace epoch,
	// reusing each step's noteStep timestamp; endBatch seals them into
	// one KindSteps span per pop (per batch, not per step, so traces
	// stay within the ring even for step-heavy sessions).
	var batchStart, lastStart time.Duration
	ran := 0
	for i := 0; i < k; i++ {
		m.mu.Lock()
		if m.state != Refining {
			s.endBatch(sc, m, batchStart, lastStart, ran)
			m.mu.Unlock()
			return
		}
		now := time.Now()
		if i == 0 {
			// Queue wait: the stamp enqueue took before the scheduler
			// lock, claimed exactly once per pop. Both reads ride
			// timestamps the path already takes (D13) — no clock call
			// or lock was added for this.
			if enq := m.enqueuedNS.Swap(0); enq != 0 {
				if wait := now.UnixNano() - enq; wait > 0 {
					s.obs.QueueWait.ObserveShard(sc.id, wait)
					if m.trace != nil {
						m.trace.AppendAt(trace.KindQueueWait,
							now.Sub(m.created)-time.Duration(wait), time.Duration(wait), int64(sc.id))
					}
				}
			}
		}
		if gap := m.noteStep(now); gap > 0 {
			s.obs.StepGap.ObserveShardExemplar(sc.id, int64(gap), m.id)
		}
		start := now.Sub(m.created)
		if ran == 0 {
			batchStart = start
		}
		lastStart = start
		ran++
		frontier, failure, stack := s.stepSession(m)
		if failure != nil {
			s.failLocked(sc, m, failure, stack, batchStart, lastStart, ran)
			return
		}
		m.steps++
		s.steps.Add(1)
		sc.stepsDone.Add(1)
		if m.firstFrontier == 0 && len(frontier) > 0 {
			m.firstFrontier = time.Since(m.created)
			s.obs.FirstFrontier.ObserveShardExemplar(0, int64(m.firstFrontier), m.id)
			if m.trace != nil {
				m.trace.AppendAt(trace.KindFirstFrontier, m.firstFrontier, m.firstFrontier, 0)
			}
		}
		if m.trace != nil && len(frontier) > 0 {
			// Convergence-curve sample: the regime's resolution, frontier
			// size and best scalarization, packed into one 32-byte span.
			// Only non-empty frontiers sample, so the scalarization is
			// always finite. Rides the step's existing clock reads and the
			// lock already held — no allocation (D13, pinned by
			// TestObserveStepPathAllocFree).
			m.trace.AppendAt(trace.KindCurve, start,
				trace.PackCurveScalar(bestScalar(frontier)),
				trace.PackCurveN(m.sess.Resolution(), len(frontier)))
		}
		if m.sess.AtMaxResolution() {
			m.setState(AtTarget)
			s.endBatch(sc, m, batchStart, lastStart, ran)
			if m.trace != nil {
				m.trace.AppendAt(trace.KindConverged, lastStart, 0, int64(m.steps))
				// Convergence speed: how many curve samples it took to get
				// within the target-precision factor of the regime's final
				// scalarization. Once per regime, off the step path.
				if n := stepsToEpsilon(m.trace, s.cfg.Opt.TargetPrecision); n > 0 {
					s.obs.StepsToEpsilon.Observe(int64(n))
				}
			}
			if cache := s.cacheFor(m.canonFp); cache != nil && !m.snapshotted {
				// The export also makes this session the representative
				// of its isomorphism class, so later isomorphic queries
				// warm-start from it via remap.
				t0 := time.Now()
				snap := m.sess.Optimizer().Snapshot()
				// Stamp before sharing: the label is the epoch current
				// at the session's creation (its query's statistics),
				// not whatever the catalog moved to since.
				snap.SetStatsEpoch(m.statsEpoch)
				cache.Put(m.fp, m.canonFp, m.structFp, m.canonPerm, snap)
				if s.store != nil && s.cfg.StorePolicy == PersistOnPut {
					// Write-through, off the hot path: Put only hands
					// the (immutable) snapshot to the store's
					// background writer.
					s.store.Put(m.fp, m.canonFp, m.structFp, m.canonPerm, snap)
				}
				m.snapshotted = true
				if m.trace != nil {
					// Convergence is once per regime, so an extra clock
					// pair here is off the hot path.
					m.trace.Append(trace.KindExport, t0, time.Since(t0), 0)
				}
			}
			m.mu.Unlock()
			return
		}
		// Decide the continuation while still holding m.mu (hotPending
		// is lock-free) so a preempted or exhausted batch seals its span
		// without re-acquiring the lock.
		preempt := i+1 < k && (owner.hotPending() || sc.hotPending())
		if preempt || i+1 == k {
			s.endBatch(sc, m, batchStart, lastStart, ran)
		}
		m.mu.Unlock()
		if preempt {
			sc.preempts.Add(1)
			break
		}
	}
	owner.enqueue(m, false)
}

// stepSession runs one refinement step under m.mu, converting a panic
// (from the optimizer or the injected FaultHook) into a captured
// error. The deferred recover is open-coded by the compiler — no
// allocation, no lock on the non-panic path (D13; pinned by
// TestObserveStepPathAllocFree) — and the stack capture only runs
// once a panic has already paid for itself.
func (s *Service) stepSession(m *managed) (frontier []*plan.Node, failure error, stack []byte) {
	defer func() {
		if r := recover(); r != nil {
			failure = fmt.Errorf("step panic: %v", r)
			stack = debug.Stack()
		}
	}()
	if h := s.cfg.FaultHook; h != nil {
		h(m.id, m.steps)
	}
	frontier = m.sess.Step()
	return
}

// failLocked transitions a session whose step panicked to Failed: the
// error and stack are captured for Poll and the trace archive, a
// poisoned warm start is quarantined, and the session stays in the
// registry so the client can read the failure over the API (Close or
// the janitor reaps it later). The worker returns to its queue — one
// tenant's panic never takes the daemon, the shard, or a sibling
// session with it. Called with m.mu held; returns with it released.
func (s *Service) failLocked(sc *scheduler, m *managed, failure error, stack []byte, first, last time.Duration, ran int) {
	m.failErr = failure.Error()
	m.failStack = string(stack)
	m.setState(Failed)
	s.endBatch(sc, m, first, last, ran)
	// A warm session whose very first step panics indicts the restored
	// snapshot, not the session's own refinement: quarantine the source
	// (under its own canonical digest — a drift restore's source lives
	// on a different cache shard than this session's digest).
	poisoned := m.warm && m.steps == 0 && m.srcFP != ""
	srcFP, canonFp := m.srcFP, m.srcCanon
	m.mu.Unlock()
	if poisoned {
		s.quarantine(srcFP, canonFp)
	}
	s.failed.Add(1)
	gap := s.observeEnd(m, trace.KindFailed)
	s.shards[m.shard].mgr.recordGap(gap)
}

// endBatch seals one scheduling quantum: the steps-per-pop histogram
// sample and the batch's KindSteps span (Dur is first-to-last step
// start). Callers hold m.mu; a no-step batch records nothing.
func (s *Service) endBatch(sc *scheduler, m *managed, first, last time.Duration, ran int) {
	if ran == 0 {
		return
	}
	s.obs.QuantumSteps.ObserveShard(sc.id, int64(ran))
	if m.trace != nil {
		m.trace.AppendAt(trace.KindSteps, first, last-first, int64(ran))
	}
}

// lookup fetches a live session or fails with a not-found error.
func (s *Service) lookup(id string) (*managed, error) {
	m, ok := s.shardFor(id).mgr.get(id)
	if !ok {
		return nil, fmt.Errorf("service: no session %q", id)
	}
	return m, nil
}

// finish removes a terminal session from its shard's registry and
// archives its starvation sample and lifecycle trace. k is the terminal
// span kind (selected/closed). Callers must not hold m.mu.
func (s *Service) finish(m *managed, k trace.Kind) {
	gap := s.observeEnd(m, k)
	sh := s.shards[m.shard]
	sh.mgr.remove(m.id)
	sh.mgr.recordGap(gap)
}

// statusLocked builds a Status snapshot; callers hold m.mu.
func (m *managed) statusLocked() Status {
	return Status{
		ID:            m.id,
		Query:         m.sess.Optimizer().Query().Name(),
		State:         m.state,
		WarmStarted:   m.warm,
		Drift:         m.drift,
		Provenance:    m.provenance,
		Resolution:    m.sess.Resolution(),
		Steps:         m.steps,
		Bounds:        m.sess.Bounds(),
		Frontier:      m.sess.Frontier(),
		FirstFrontier: m.firstFrontier,
		MaxStepGap:    m.maxStepGap,
		Err:           m.failErr,
	}
}

// Poll returns the session's current status and frontier snapshot.
func (s *Service) Poll(id string) (Status, error) {
	m, err := s.lookup(id)
	if err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.touch()
	return m.statusLocked(), nil
}

// ErrWaitTimeout reports that WaitTargetTimeout's deadline passed
// before the session left the Refining state.
var ErrWaitTimeout = errors.New("service: wait target timeout")

// WaitTarget blocks until the session leaves the Refining state — it
// reached the target precision (AtTarget) or was selected, closed or
// expired concurrently — and returns the status at that moment. It is
// the step-completion signal clients (and benchmarks) should use
// instead of polling: the scheduler broadcasts every state transition,
// so no cycles are burned re-reading an unchanged frontier. A blocked
// waiter counts as ongoing client interaction, so the janitor never
// idle-expires a waited-on session. If the service shuts down while
// waiting, WaitTarget returns the last status with ErrShutdown.
func (s *Service) WaitTarget(id string) (Status, error) {
	return s.WaitTargetTimeout(id, 0)
}

// WaitTargetTimeout is WaitTarget with a hang guard: if d is positive
// and elapses first, the last status is returned with ErrWaitTimeout
// (the waiter leaves, so idle expiry resumes for the session). d <= 0
// means no deadline.
func (s *Service) WaitTargetTimeout(id string, d time.Duration) (Status, error) {
	m, err := s.lookup(id)
	if err != nil {
		return Status{}, err
	}
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
		// cond.Wait cannot time out; a timer broadcast bounds it.
		timer := time.AfterFunc(d, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer timer.Stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.touch()
	m.waiters++
	for m.state == Refining && !s.stopping.Load() &&
		(deadline.IsZero() || time.Now().Before(deadline)) {
		m.cond.Wait()
	}
	m.waiters--
	m.touch()
	switch {
	case m.state != Refining:
		return m.statusLocked(), nil
	case s.stopping.Load():
		return m.statusLocked(), ErrShutdown
	default:
		return m.statusLocked(), ErrWaitTimeout
	}
}

// SetBounds changes a live session's cost bounds. Per the paper's
// regime rule the next step restarts at resolution 0, so the session is
// (re)scheduled at hot priority on its shard.
func (s *Service) SetBounds(id string, b cost.Vector) error {
	m, err := s.lookup(id)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if !m.state.Live() {
		m.mu.Unlock()
		return fmt.Errorf("service: session %q is %v", id, m.state)
	}
	if err := m.sess.SetBounds(b); err != nil {
		m.mu.Unlock()
		return err
	}
	m.setState(Refining)
	m.snapshotted = false // new regime: next convergence re-exports
	// The session sat converged (cost-free, not runnable) until this
	// bounds change; that client idle time is not scheduler starvation,
	// so the inter-step gap clock restarts with the new regime.
	m.lastStep = time.Time{}
	m.touch()
	if m.trace != nil {
		// touch just read the clock; reuse it for the span.
		m.trace.Append(trace.KindBounds, m.lastTouch, 0, 0)
	}
	m.mu.Unlock()
	s.shards[m.shard].sched.enqueue(m, true)
	return nil
}

// Select picks a plan from the session's current frontier by index,
// finishing the session (it leaves the registry). Scheduler steps can
// reorder the frontier between a client's poll and its select, so
// expectSteps carries the Steps value from the poll the index refers
// to: a mismatch means the frontier moved underneath the client and
// Select fails with ErrFrontierMoved instead of silently returning a
// plan the user never saw. Pass a negative expectSteps to skip the
// check (safe once the session is AtTarget, whose frontier is frozen).
func (s *Service) Select(id string, index, expectSteps int) (*plan.Node, error) {
	m, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if !m.state.Live() {
		m.mu.Unlock()
		return nil, fmt.Errorf("service: session %q is %v", id, m.state)
	}
	if expectSteps >= 0 && expectSteps != m.steps {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: session %q refined from step %d to %d since the poll",
			ErrFrontierMoved, id, expectSteps, m.steps)
	}
	frontier := m.sess.Frontier()
	p, _, err := m.sess.Apply(session.Event{Action: session.Select, PlanIndex: index}, frontier)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.setState(Selected)
	m.mu.Unlock()
	s.finish(m, trace.KindSelected)
	s.selected.Add(1)
	// The session is finished: hand back a copy detached from the
	// optimizer's arena, so a client keeping the plan does not pin the
	// dead session's node chunks (see plan.DetachInto).
	return plan.DetachInto(map[*plan.Node]*plan.Node{}, p), nil
}

// Close drops a live session without selecting a plan. Closing a
// Failed session acknowledges its error and frees the registry slot
// (its terminal observability was recorded at the failure).
func (s *Service) Close(id string) error {
	m, err := s.lookup(id)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if m.state == Failed {
		m.mu.Unlock()
		s.shards[m.shard].mgr.remove(m.id)
		s.closed.Add(1)
		return nil
	}
	if !m.state.Live() {
		m.mu.Unlock()
		return fmt.Errorf("service: session %q is %v", id, m.state)
	}
	m.setState(Closed)
	m.mu.Unlock()
	s.finish(m, trace.KindClosed)
	s.closed.Add(1)
	return nil
}

// Stats returns the service counters and gauges, including the
// per-shard breakdown and the starvation-audit percentile.
func (s *Service) Stats() Stats {
	st := Stats{
		Created:           s.created.Load(),
		Selected:          s.selected.Load(),
		Closed:            s.closed.Load(),
		Expired:           s.expired.Load(),
		Failed:            s.failed.Load(),
		TimedOut:          s.timedOut.Load(),
		Poisoned:          s.poisoned.Load(),
		Rejected:          s.rejected.Load(),
		Steps:             s.steps.Load(),
		WarmStarts:        s.warmStarts.Load(),
		IsoWarmStarts:     s.isoWarmStarts.Load(),
		DriftRecosted:     s.driftRecosted.Load(),
		DriftResumed:      s.driftResumed.Load(),
		DriftQuarantined:  s.driftQuar.Load(),
		StatsEpoch:        s.statsEpoch(),
		RemapTotal:        time.Duration(s.remapNS.Load()),
		Draining:          s.draining.Load(),
		DrainConverged:    s.drainConverged.Load(),
		DrainCheckpointed: s.drainCheckpointed.Load(),
		Shards:            make([]ShardStats, len(s.shards)),
	}
	// statsMu serializes concurrent Stats callers over the reusable gap
	// scratch (this slice and each shard's liveScratch); the sort and
	// percentile below run with no shard lock held.
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	gaps := s.gapScratch[:0]
	for i, sh := range s.shards {
		sc := sh.sched
		ss := ShardStats{
			Workers:  s.shardSizes[i],
			Sessions: sh.mgr.count(),
			Queued:   sc.queueLen(),
			Steps:    sc.stepsDone.Load(),
			Pops:     sc.pops.Load(),
			Steals:   sc.steals.Load(),
			Preempts: sc.preempts.Load(),
			Rejected: sc.rejects.Load(),
		}
		st.Shards[i] = ss
		st.Active += ss.Sessions
		st.Queued += ss.Queued
		gaps = sh.mgr.appendGaps(gaps)
	}
	st.StepGapP99 = percentileDur(gaps, 0.99)
	s.gapScratch = gaps
	if s.caches != nil {
		st.CacheShards = make([]CacheStats, len(s.caches))
		for i, c := range s.caches {
			st.CacheShards[i] = c.Stats()
			st.Cache.add(st.CacheShards[i])
		}
	}
	if s.store != nil {
		st.Store = s.store.Stats()
	}
	return st
}

// percentileDur is the nearest-rank percentile of ds (p in [0,1]); it
// mirrors harness.Percentile, which service cannot import (the harness
// imports service).
func percentileDur(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	slices.Sort(ds)
	i := int(p*float64(len(ds))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(ds) {
		i = len(ds) - 1
	}
	return ds[i]
}
