// Package eventlog is the daemon's structured event channel: leveled,
// rate-limited JSON events held in a bounded in-memory ring and served
// at GET /debug/events. It replaces unstructured stdlib logging across
// the daemon so that fleet tooling can consume machine-readable events
// carrying node, session, and fingerprint identity, while operators
// keep a plain-text mirror on stderr.
//
// The package is dependency-free (stdlib only) and deliberately cheap:
// one mutex around a fixed ring, a token-bucket rate limiter with
// per-level drop counters, and no emission from the refinement step
// path at all (see DESIGN.md D17).
package eventlog

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders event severity. Debug events are suppressed unless the
// log was built with LevelDebug; everything at or above the configured
// level enters the ring (subject to rate limiting).
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

var levelNames = [...]string{"debug", "info", "warn", "error"}

func (l Level) String() string {
	if l < LevelDebug || l > LevelError {
		return "unknown"
	}
	return levelNames[l]
}

// ParseLevel maps a level name (as served in query parameters) back to
// a Level. Unknown names report ok=false.
func ParseLevel(s string) (Level, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, true
	case "info":
		return LevelInfo, true
	case "warn", "warning":
		return LevelWarn, true
	case "error":
		return LevelError, true
	}
	return LevelInfo, false
}

// Field is one structured key/value pair on an event. Values are
// strings; callers format numbers with the F* helpers so the emission
// sites stay one-liners.
type Field struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// F builds a string field.
func F(k, v string) Field { return Field{Key: k, Value: v} }

// Fint builds an integer field.
func Fint(k string, v int64) Field { return Field{Key: k, Value: strconv.FormatInt(v, 10)} }

// Fdur builds a duration field.
func Fdur(k string, d time.Duration) Field { return Field{Key: k, Value: d.String()} }

// Ferr builds an error field; nil errors render as "".
func Ferr(err error) Field {
	if err == nil {
		return Field{Key: "err", Value: ""}
	}
	return Field{Key: "err", Value: err.Error()}
}

// Event is one structured log record. Session, FP, and Phase are
// optional identity stamps — empty when the event is not tied to a
// session or lifecycle phase.
type Event struct {
	Seq     uint64  `json:"seq"`
	TimeNS  int64   `json:"time_ns"`
	Level   string  `json:"level"`
	Sub     string  `json:"sub"`
	Msg     string  `json:"msg"`
	Node    string  `json:"node,omitempty"`
	Session string  `json:"session,omitempty"`
	FP      string  `json:"fp,omitempty"`
	Phase   string  `json:"phase,omitempty"`
	Fields  []Field `json:"fields,omitempty"`
}

// Options configures a Log. The zero value is usable: 256-event ring,
// Info level, 64-event burst refilled at 32 events/second, no mirror.
type Options struct {
	// Capacity bounds the ring; older events are overwritten. Minimum 1.
	Capacity int
	// Level is the minimum severity admitted to the ring.
	Level Level
	// Node stamps every event with this node's identity.
	Node string
	// Burst and PerSecond shape the token bucket. Error events bypass
	// the limiter (they are rare and always worth keeping).
	Burst     int
	PerSecond int
	// Mirror, when non-nil, receives a plain-text rendering of every
	// admitted event (one line each) — the operator-facing stderr view.
	Mirror io.Writer
}

// Log is a bounded, rate-limited structured event ring. All methods
// are safe for concurrent use and safe on a nil receiver (no-ops), so
// packages can hold an optional *Log without nil checks at every site.
type Log struct {
	mu     sync.Mutex
	ring   []Event
	next   int // ring index of the next write
	n      int // events currently in the ring (≤ len(ring))
	seq    uint64
	level  Level
	node   string
	mirror io.Writer

	// Token bucket: tokens are event credits; refill is computed lazily
	// from the elapsed time since lastRefill.
	tokens     float64
	burst      float64
	perSec     float64
	lastRefill time.Time

	drops [4]atomic.Uint64 // per-level dropped-event counters
}

// New builds a Log from opts, applying the documented defaults.
func New(opts Options) *Log {
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.Burst <= 0 {
		opts.Burst = 64
	}
	if opts.PerSecond <= 0 {
		opts.PerSecond = 32
	}
	return &Log{
		ring:       make([]Event, opts.Capacity),
		level:      opts.Level,
		node:       opts.Node,
		mirror:     opts.Mirror,
		tokens:     float64(opts.Burst),
		burst:      float64(opts.Burst),
		perSec:     float64(opts.PerSecond),
		lastRefill: time.Now(),
	}
}

// Emit records one event. Debug/Info/Warn events below the configured
// level are discarded; events beyond the rate limit are counted in the
// per-level drop counters instead of entering the ring. Errors bypass
// the limiter.
func (l *Log) Emit(lv Level, sub, msg string, fields ...Field) {
	l.emit(lv, sub, msg, "", "", "", fields)
}

// EmitSession records an event stamped with session identity: session
// ID, plan fingerprint, and the session's lifecycle phase or state.
func (l *Log) EmitSession(lv Level, sub, msg, session, fp, phase string, fields ...Field) {
	l.emit(lv, sub, msg, session, fp, phase, fields)
}

func (l *Log) emit(lv Level, sub, msg, session, fp, phase string, fields []Field) {
	if l == nil {
		return
	}
	if lv < LevelDebug {
		lv = LevelDebug
	} else if lv > LevelError {
		lv = LevelError
	}
	now := time.Now()

	l.mu.Lock()
	if lv < l.level {
		l.mu.Unlock()
		return
	}
	if lv < LevelError && !l.takeTokenLocked(now) {
		l.mu.Unlock()
		l.drops[lv].Add(1)
		return
	}
	l.seq++
	ev := Event{
		Seq:     l.seq,
		TimeNS:  now.UnixNano(),
		Level:   lv.String(),
		Sub:     sub,
		Msg:     msg,
		Node:    l.node,
		Session: session,
		FP:      fp,
		Phase:   phase,
		Fields:  fields,
	}
	l.ring[l.next] = ev
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	mirror := l.mirror
	l.mu.Unlock()

	if mirror != nil {
		writeMirror(mirror, &ev)
	}
}

// takeTokenLocked refills the bucket from elapsed time and consumes one
// token if available. Callers hold mu.
func (l *Log) takeTokenLocked(now time.Time) bool {
	elapsed := now.Sub(l.lastRefill).Seconds()
	if elapsed > 0 {
		l.tokens += elapsed * l.perSec
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.lastRefill = now
	}
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// writeMirror renders the operator-facing plain-text line:
//
//	2026-08-08T12:00:00.000Z info service: session created id=s-1 ...
func writeMirror(w io.Writer, ev *Event) {
	var b strings.Builder
	b.Grow(96)
	b.WriteString(time.Unix(0, ev.TimeNS).UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteByte(' ')
	b.WriteString(ev.Level)
	b.WriteByte(' ')
	b.WriteString(ev.Sub)
	b.WriteString(": ")
	b.WriteString(ev.Msg)
	if ev.Session != "" {
		b.WriteString(" session=")
		b.WriteString(ev.Session)
	}
	if ev.FP != "" {
		b.WriteString(" fp=")
		b.WriteString(ev.FP)
	}
	if ev.Phase != "" {
		b.WriteString(" phase=")
		b.WriteString(ev.Phase)
	}
	for _, f := range ev.Fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		if strings.ContainsAny(f.Value, " \t") {
			fmt.Fprintf(&b, "%q", f.Value)
		} else {
			b.WriteString(f.Value)
		}
	}
	b.WriteByte('\n')
	io.WriteString(w, b.String())
}

// Snapshot returns up to n of the most recent events at or above
// minLevel, oldest first. n ≤ 0 means "all retained". The returned
// slice and its events are copies; mutating them cannot race the ring.
func (l *Log) Snapshot(n int, minLevel Level) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.n; i++ {
		ev := l.ring[(start+i)%len(l.ring)]
		if lv, ok := ParseLevel(ev.Level); ok && lv < minLevel {
			continue
		}
		// Copy Fields so callers cannot alias ring-owned slices after
		// the slot is overwritten. (Slots store the caller's slice; a
		// snapshot must not share it.)
		if len(ev.Fields) > 0 {
			ev.Fields = append([]Field(nil), ev.Fields...)
		}
		out = append(out, ev)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Dropped reports the number of rate-limited events per level.
func (l *Log) Dropped(lv Level) uint64 {
	if l == nil || lv < LevelDebug || lv > LevelError {
		return 0
	}
	return l.drops[lv].Load()
}

// DroppedTotal reports rate-limited events across all levels.
func (l *Log) DroppedTotal() uint64 {
	if l == nil {
		return 0
	}
	var t uint64
	for i := range l.drops {
		t += l.drops[i].Load()
	}
	return t
}

// Len reports the number of events currently retained.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Printf adapts the Log to the func(format string, args ...any)
// shape used by bootstrap.Options.Logf and similar hooks: the line is
// formatted once and emitted at Info level under the given subsystem.
func (l *Log) Printf(sub string) func(format string, args ...any) {
	return func(format string, args ...any) {
		l.Emit(LevelInfo, sub, fmt.Sprintf(format, args...))
	}
}
