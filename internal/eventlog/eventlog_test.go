package eventlog

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRingBounded pins the bounded-memory invariant: under many
// concurrent writers the ring never retains more than its capacity and
// a snapshot returns the most recent events in order.
func TestRingBounded(t *testing.T) {
	const cap = 32
	l := New(Options{Capacity: cap, Burst: 1 << 20, PerSecond: 1 << 20})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Emit(LevelInfo, "test", "event", Fint("i", int64(i)))
			}
		}()
	}
	wg.Wait()
	if got := l.Len(); got != cap {
		t.Fatalf("ring holds %d events, want exactly capacity %d", got, cap)
	}
	evs := l.Snapshot(0, LevelDebug)
	if len(evs) != cap {
		t.Fatalf("snapshot returned %d events, want %d", len(evs), cap)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot out of order: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	// The newest retained event must be the globally newest emission.
	if evs[len(evs)-1].Seq != 8*500 {
		t.Fatalf("newest seq = %d, want %d", evs[len(evs)-1].Seq, 8*500)
	}
}

// TestRateLimiterDrops pins the drop counters: with a tiny bucket most
// of a burst is dropped and counted per level, while errors bypass the
// limiter entirely.
func TestRateLimiterDrops(t *testing.T) {
	l := New(Options{Capacity: 128, Burst: 4, PerSecond: 1})
	for i := 0; i < 100; i++ {
		l.Emit(LevelInfo, "test", "flood")
	}
	for i := 0; i < 10; i++ {
		l.Emit(LevelWarn, "test", "warn-flood")
	}
	for i := 0; i < 10; i++ {
		l.Emit(LevelError, "test", "boom")
	}
	if d := l.Dropped(LevelInfo); d < 90 {
		t.Fatalf("info drops = %d, want ≥90 with burst 4", d)
	}
	if d := l.Dropped(LevelWarn); d != 10 {
		t.Fatalf("warn drops = %d, want 10 (bucket exhausted)", d)
	}
	if d := l.Dropped(LevelError); d != 0 {
		t.Fatalf("error drops = %d, want 0 (errors bypass the limiter)", d)
	}
	errs := 0
	for _, ev := range l.Snapshot(0, LevelError) {
		if ev.Level == "error" {
			errs++
		}
	}
	if errs != 10 {
		t.Fatalf("ring holds %d error events, want all 10", errs)
	}
	if l.DroppedTotal() != l.Dropped(LevelInfo)+l.Dropped(LevelWarn) {
		t.Fatalf("DroppedTotal mismatch")
	}
}

// TestLevelFilter checks the admission level and Snapshot's minLevel.
func TestLevelFilter(t *testing.T) {
	l := New(Options{Capacity: 16, Level: LevelInfo})
	l.Emit(LevelDebug, "test", "hidden")
	l.Emit(LevelInfo, "test", "shown")
	l.Emit(LevelWarn, "test", "warned")
	if got := l.Len(); got != 2 {
		t.Fatalf("ring holds %d events, want 2 (debug filtered)", got)
	}
	if got := len(l.Snapshot(0, LevelWarn)); got != 1 {
		t.Fatalf("snapshot(warn) = %d events, want 1", got)
	}
}

// TestMirrorAndJSON checks the stderr mirror format and that events
// marshal to the documented JSON shape.
func TestMirrorAndJSON(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	l := New(Options{Capacity: 16, Node: "n1", Mirror: w})
	l.EmitSession(LevelWarn, "service", "slow session", "s-42", "fp-abc", "refining",
		Fdur("first_frontier", 2*time.Second), Ferr(nil))

	mu.Lock()
	line := sb.String()
	mu.Unlock()
	for _, want := range []string{"warn service: slow session", "session=s-42", "fp=fp-abc", "phase=refining", "first_frontier=2s"} {
		if !strings.Contains(line, want) {
			t.Fatalf("mirror line %q missing %q", line, want)
		}
	}

	evs := l.Snapshot(1, LevelDebug)
	if len(evs) != 1 {
		t.Fatalf("snapshot = %d events, want 1", len(evs))
	}
	raw, err := json.Marshal(evs[0])
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, k := range []string{"seq", "time_ns", "level", "sub", "msg", "node", "session", "fp", "phase", "fields"} {
		if _, ok := back[k]; !ok {
			t.Fatalf("JSON missing key %q: %s", k, raw)
		}
	}
}

// TestNilLogSafe pins that a nil *Log is a safe no-op receiver.
func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Emit(LevelError, "test", "ignored")
	l.EmitSession(LevelError, "test", "ignored", "s", "f", "p")
	if l.Snapshot(10, LevelDebug) != nil {
		t.Fatal("nil log snapshot should be nil")
	}
	if l.Len() != 0 || l.Dropped(LevelInfo) != 0 || l.DroppedTotal() != 0 {
		t.Fatal("nil log counters should be zero")
	}
}

// TestParseLevel covers the level name round-trip.
func TestParseLevel(t *testing.T) {
	for lv := LevelDebug; lv <= LevelError; lv++ {
		got, ok := ParseLevel(lv.String())
		if !ok || got != lv {
			t.Fatalf("ParseLevel(%q) = %v, %v", lv.String(), got, ok)
		}
	}
	if _, ok := ParseLevel("nope"); ok {
		t.Fatal("ParseLevel accepted garbage")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
