// Cloudpricing reproduces the paper's Example 1: in cloud computing,
// buying more resources speeds up execution, so query plans trade
// execution time against monetary fees. The example optimizes a TPC-H
// block over the two-metric cloud space and renders the time/fee
// frontier the way the paper's Figure 1 envisions, before and after the
// user imposes a budget.
//
// Run with: go run ./examples/cloudpricing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/costmodel"
	"repro/internal/plan"
	"repro/internal/session"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	blk, ok := workload.Find(workload.MustTPCHBlocks(1), "Q10")
	if !ok {
		log.Fatal("block Q10 missing")
	}

	model, err := costmodel.New(cost.CloudSpace(), costmodel.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	sess, err := session.New(blk.Query, core.Config{
		Model:            model,
		ResolutionLevels: 6,
		TargetPrecision:  1.01,
		PrecisionStep:    0.2,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Refine twice without user input: the frontier sharpens.
	sess.Step()
	frontier := sess.Step()
	fmt.Printf("Time/fee tradeoffs for %s after two refinements (%d plans):\n\n",
		blk.Name, len(frontier))
	plot(frontier, model)

	// The user sets a budget: 50% above the cheapest known fee. Bounds
	// restrict the search space, so refinement gets faster and the
	// display focuses on affordable plans.
	budget := minFees(frontier, model) * 1.5
	b := model.Space().Unbounded()
	b[model.Space().Index(cost.Fees)] = budget
	if err := sess.SetBounds(b); err != nil {
		log.Fatal(err)
	}
	frontier = sess.Step()
	fmt.Printf("\nAfter imposing a fee budget of %.4g (%d plans):\n\n", budget, len(frontier))
	plot(frontier, model)
	if len(frontier) == 0 {
		fmt.Println("no plan fits the budget — the user would relax it")
		return
	}

	fastest, cheapest := frontier[0], frontier[0]
	sp := model.Space()
	for _, p := range frontier {
		if sp.Component(p.Cost, cost.Time) < sp.Component(fastest.Cost, cost.Time) {
			fastest = p
		}
		if sp.Component(p.Cost, cost.Fees) < sp.Component(cheapest.Cost, cost.Fees) {
			cheapest = p
		}
	}
	fmt.Printf("\nfastest within budget:  time=%.4g fees=%.4g  %s\n",
		sp.Component(fastest.Cost, cost.Time), sp.Component(fastest.Cost, cost.Fees), fastest)
	fmt.Printf("cheapest within budget: time=%.4g fees=%.4g  %s\n",
		sp.Component(cheapest.Cost, cost.Time), sp.Component(cheapest.Cost, cost.Fees), cheapest)
}

func plot(frontier []*plan.Node, model *costmodel.Model) {
	vs := make([]cost.Vector, len(frontier))
	for i, p := range frontier {
		vs[i] = p.Cost
	}
	fmt.Print(viz.Scatter(vs, model.Space().Index(cost.Time), model.Space().Index(cost.Fees),
		viz.Options{Width: 64, Height: 14, XLabel: "time", YLabel: "fees", LogX: true, LogY: true}))
}

func minFees(frontier []*plan.Node, model *costmodel.Model) float64 {
	best := model.Space().Component(frontier[0].Cost, cost.Fees)
	for _, p := range frontier[1:] {
		if f := model.Space().Component(p.Cost, cost.Fees); f < best {
			best = f
		}
	}
	return best
}
