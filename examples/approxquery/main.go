// Approxquery reproduces the paper's Example 2: in approximate query
// processing, sampling trades execution time against result precision.
// The example optimizes an analytics join over (time, precision-loss),
// shows the full tradeoff spectrum, then picks plans for three user
// profiles: exact-answer, balanced, and dashboard-speed.
//
// Run with: go run ./examples/approxquery
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/costmodel"
	"repro/internal/plan"
	"repro/internal/query"
)

func main() {
	// A log-analytics schema: a large event log joined with two
	// dimension tables. The log offers many sampling rates.
	cat := catalog.MustNew([]catalog.Table{
		{Name: "events", Rows: 20_000_000, RowWidth: 90, HasIndex: true,
			SamplingRates: []float64{0.1, 0.2, 0.35, 0.5, 0.7, 0.85, 1}},
		{Name: "users", Rows: 2_000_000, RowWidth: 140, HasIndex: true,
			SamplingRates: []float64{0.5, 1}},
		{Name: "pages", Rows: 50_000, RowWidth: 70, HasIndex: true,
			SamplingRates: []float64{1}},
	})
	q, err := query.New(cat,
		[]int{cat.MustID("events"), cat.MustID("users"), cat.MustID("pages")},
		[]query.JoinEdge{
			{A: cat.MustID("events"), B: cat.MustID("users"), Selectivity: 1.0 / 2_000_000},
			{A: cat.MustID("events"), B: cat.MustID("pages"), Selectivity: 1.0 / 50_000},
		},
		query.WithName("clickstream"),
		query.WithFilter(cat.MustID("events"), 0.3))
	if err != nil {
		log.Fatal(err)
	}

	// Two metrics: execution time and precision loss. Sampling shrinks
	// scan time (and, with PropagateSampling, downstream join work) at
	// the price of precision.
	params := costmodel.DefaultParams()
	params.PropagateSampling = true
	model, err := costmodel.New(cost.NewSpace(cost.Time, cost.PrecisionLoss), params)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := core.NewOptimizer(q, core.Config{
		Model:            model,
		ResolutionLevels: 6,
		TargetPrecision:  1.01,
		PrecisionStep:    0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		opt.Optimize(nil, r)
	}

	frontier := opt.Results(nil, 5)
	sp := model.Space()
	sort.Slice(frontier, func(i, j int) bool {
		return sp.Component(frontier[i].Cost, cost.Time) < sp.Component(frontier[j].Cost, cost.Time)
	})
	fmt.Printf("Time / precision tradeoffs for %s (%d Pareto plans):\n\n", q.Name(), len(frontier))
	fmt.Printf("%-14s %-16s %s\n", "time", "precision", "plan")
	for _, p := range frontier {
		fmt.Printf("%-14.4g %-16.3f %s\n",
			sp.Component(p.Cost, cost.Time), precision(p, sp), p)
	}

	// Three user profiles select from the same frontier.
	exact := frontier[len(frontier)-1]
	for _, p := range frontier {
		if sp.Component(p.Cost, cost.PrecisionLoss) == 0 {
			exact = p
			break
		}
	}
	fastest := frontier[0]
	balanced := frontier[0]
	for _, p := range frontier {
		if precision(p, sp) >= 0.6 {
			balanced = p
			break
		}
	}
	fmt.Printf("\nexact analyst:    %s\n", describe(exact, sp))
	fmt.Printf("balanced analyst: %s\n", describe(balanced, sp))
	fmt.Printf("dashboard:        %s\n", describe(fastest, sp))
}

func describe(p *plan.Node, sp *cost.Space) string {
	return fmt.Sprintf("time=%.4g precision=%.3f  %v",
		sp.Component(p.Cost, cost.Time), precision(p, sp), p)
}

// precision converts accumulated precision loss back into a [0, 1]
// precision display value (losses add up as costs and may exceed one).
func precision(p *plan.Node, sp *cost.Space) float64 {
	prec := 1 - sp.Component(p.Cost, cost.PrecisionLoss)
	if prec < 0 {
		return 0
	}
	return prec
}
