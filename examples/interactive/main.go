// Interactive replays a full user session against the incremental
// anytime optimizer, mirroring the paper's Figure 1: the optimizer
// first shows a coarse approximation of the Pareto frontier, refines it
// while the user watches, reacts to the user dragging the cost bounds
// (which resets the resolution but reuses all stored plans), and ends
// when the user clicks a plan.
//
// Run with: go run ./examples/interactive
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/costmodel"
	"repro/internal/plan"
	"repro/internal/session"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	blk, ok := workload.Find(workload.MustTPCHBlocks(1), "Q9")
	if !ok {
		log.Fatal("block Q9 missing")
	}
	model := costmodel.Default()
	sess, err := session.New(blk.Query, core.Config{
		Model:            model,
		ResolutionLevels: 8,
		TargetPrecision:  1.01,
		PrecisionStep:    0.15,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	sess.Visualize = func(frontier []*plan.Node) {
		vs := make([]cost.Vector, len(frontier))
		for i, p := range frontier {
			vs[i] = p.Cost
		}
		fmt.Print(viz.Scatter(vs, 0, 2, viz.Options{
			Width: 64, Height: 12, XLabel: "time", YLabel: "precision-loss", LogX: true,
		}))
		fmt.Println()
	}

	// The scripted user: watches two refinements, then bounds the time
	// metric (dynamic bounds are expressed as a callback below), waits
	// two more refinements and selects the first plan.
	fmt.Printf("Interactive session on %s over %v\n\n", blk.Name, model.Space())

	fmt.Println("== iteration 1: first coarse frontier ==")
	sess.Step()
	fmt.Println("== iteration 2: refined without user input ==")
	frontier := sess.Step()

	// The user drags the time bound to the frontier's midpoint.
	mid := medianTime(frontier, model)
	b := model.Space().Unbounded()
	b[model.Space().Index(cost.Time)] = mid
	fmt.Printf("== user drags time bound to %.4g; resolution resets ==\n", mid)
	if err := sess.SetBounds(b); err != nil {
		log.Fatal(err)
	}
	sess.Step()
	fmt.Println("== refining inside the new bounds ==")
	frontier = sess.Step()
	if len(frontier) == 0 {
		log.Fatal("no plans within bounds")
	}

	selected := frontier[0]
	fmt.Printf("== user selects a plan ==\n%s\n", selected.Indented())

	fmt.Println("Per-iteration records (note the cheap re-optimization after the bounds change):")
	for _, rec := range sess.Records() {
		marker := ""
		if rec.BoundsChanged {
			marker = "  <- new bounds regime"
		}
		fmt.Printf("  iter %d: r=%d %8v frontier=%d%s\n",
			rec.Iteration, rec.Resolution, rec.Duration.Round(10e3), rec.FrontierSize, marker)
	}
	fmt.Printf("\noptimizer statistics: %v\n", sess.Optimizer().Stats())
}

func medianTime(frontier []*plan.Node, model *costmodel.Model) float64 {
	if len(frontier) == 0 {
		return 0
	}
	total := 0.0
	for _, p := range frontier {
		total += model.Space().Component(p.Cost, cost.Time)
	}
	return total / float64(len(frontier))
}
