// Quickstart: optimize a three-table join over the paper's three cost
// metrics (execution time, reserved cores, result precision) and print
// the Pareto-optimal cost tradeoffs at increasing resolution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/query"
)

func main() {
	// A small star schema: one fact table and two dimensions. The fact
	// table offers index and sampling scan variants, so plans trade
	// execution time against reserved cores and result precision.
	cat := catalog.MustNew([]catalog.Table{
		{Name: "sales", Rows: 1_000_000, RowWidth: 120, HasIndex: true,
			SamplingRates: []float64{0.5, 0.75, 1}},
		{Name: "stores", Rows: 500, RowWidth: 60, HasIndex: true,
			SamplingRates: []float64{1}},
		{Name: "products", Rows: 20_000, RowWidth: 80, HasIndex: true,
			SamplingRates: []float64{1}},
	})
	q, err := query.New(cat,
		[]int{cat.MustID("sales"), cat.MustID("stores"), cat.MustID("products")},
		[]query.JoinEdge{
			{A: cat.MustID("sales"), B: cat.MustID("stores"), Selectivity: 1.0 / 500},
			{A: cat.MustID("sales"), B: cat.MustID("products"), Selectivity: 1.0 / 20_000},
		},
		query.WithName("sales-star"),
		query.WithFilter(cat.MustID("stores"), 0.1))
	if err != nil {
		log.Fatal(err)
	}

	// An incremental anytime optimizer with five resolution levels: the
	// first invocation returns a coarse frontier quickly, later ones
	// refine it without regenerating plans.
	opt, err := core.NewOptimizer(q, core.Config{
		Model:            costmodel.Default(),
		ResolutionLevels: 5,
		TargetPrecision:  1.01,
		PrecisionStep:    0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	for r := 0; r < 5; r++ {
		opt.Optimize(nil, r)
		frontier := opt.Results(nil, r)
		fmt.Printf("resolution %d: %d Pareto-optimal tradeoffs\n", r, len(frontier))
	}

	fmt.Println("\nFinal frontier (time, cores, precision-loss):")
	for i, p := range opt.Results(nil, 4) {
		fmt.Printf("  #%-3d %-9v %s\n", i, p.Cost, p)
		if i == 9 {
			fmt.Printf("  ... and %d more\n", len(opt.Results(nil, 4))-10)
			break
		}
	}
	fmt.Printf("\nstatistics: %v\n", opt.Stats())
}
