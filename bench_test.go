// Package repro's root benchmarks regenerate every figure of the
// paper's evaluation (Trummer and Koch, SIGMOD 2015, Section 6) as
// testing.B benchmarks, plus ablation benchmarks for the design choices
// catalogued in DESIGN.md. Each BenchmarkFigure* measures one optimizer
// invocation series exactly as the corresponding figure does; the
// rendered tables themselves come from cmd/experiments.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// As in the paper, the interesting output is the relative time of the
// three algorithms, reported via custom metrics (iama-ns,
// memoryless-ns, oneshot-ns per invocation, and the ml/iama, os/iama
// speedup ratios).
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/workload"
)

// benchSeries runs the three algorithms on one block and reports their
// per-invocation (average or maximal) times as custom benchmark metrics.
func benchSeries(b *testing.B, blockName string, levels int, alphaT, alphaS float64, useMax bool) {
	b.Helper()
	b.ReportAllocs()
	blk, ok := workload.Find(workload.MustTPCHBlocks(1), blockName)
	if !ok {
		b.Fatalf("unknown block %s", blockName)
	}
	model := costmodel.Default()
	var iamaNS, mlNS, osNS float64
	for i := 0; i < b.N; i++ {
		ia, ml, os, err := harness.InvocationTimes(blk.Query, model, levels, alphaT, alphaS)
		if err != nil {
			b.Fatal(err)
		}
		iamaNS += harness.AggregateNS(ia, useMax)
		mlNS += harness.AggregateNS(ml, useMax)
		osNS += harness.AggregateNS(os, useMax)
	}
	n := float64(b.N)
	b.ReportMetric(iamaNS/n, "iama-ns")
	b.ReportMetric(mlNS/n, "memoryless-ns")
	b.ReportMetric(osNS/n, "oneshot-ns")
	if iamaNS > 0 {
		b.ReportMetric(mlNS/iamaNS, "ml/iama")
		b.ReportMetric(osNS/iamaNS, "os/iama")
	}
}

// figureBlocks holds one representative block per table-count group
// {2, 3, 4, 5, 6, 8}, matching the x-axis of Figures 3–5.
var figureBlocks = []string{"Q4", "Q3", "Q10", "Q2", "Q5", "Q8"}

// Figure 3: average time per optimizer invocation at αT=1.01, αS=0.05
// for 1, 5 and 20 resolution levels.
func BenchmarkFigure3(b *testing.B) {
	for _, levels := range []int{1, 5, 20} {
		for _, blk := range figureBlocks {
			b.Run(fmt.Sprintf("levels=%d/%s", levels, blk), func(b *testing.B) {
				benchSeries(b, blk, levels, 1.01, 0.05, false)
			})
		}
	}
}

// Figure 4: as Figure 3 at the finer target precision αT=1.005, αS=0.5.
func BenchmarkFigure4(b *testing.B) {
	for _, levels := range []int{1, 5, 20} {
		for _, blk := range figureBlocks {
			b.Run(fmt.Sprintf("levels=%d/%s", levels, blk), func(b *testing.B) {
				benchSeries(b, blk, levels, 1.005, 0.5, false)
			})
		}
	}
}

// Figure 5: maximal time per optimizer invocation, 20 resolution
// levels, αT=1.005, αS=0.5.
func BenchmarkFigure5(b *testing.B) {
	for _, blk := range figureBlocks {
		b.Run(blk, func(b *testing.B) {
			benchSeries(b, blk, 20, 1.005, 0.5, true)
		})
	}
}

// Figure 2a: the anytime series' total latency (its quality trajectory
// is printed by cmd/experiments -figure 2a).
func BenchmarkFigure2aAnytimeSeries(b *testing.B) {
	blk, _ := workload.Find(workload.MustTPCHBlocks(1), "Q10")
	model := costmodel.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{Model: model, ResolutionLevels: 10, TargetPrecision: 1.01, PrecisionStep: 0.05}
		opt := core.MustNewOptimizer(blk.Query, cfg)
		for r := 0; r < 10; r++ {
			opt.Optimize(nil, r)
		}
	}
}

// Figure 2b: per-invocation run time of incremental versus memoryless
// across a 10-step refinement series.
func BenchmarkFigure2bInvocationTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.InvocationTrace("Q5", harness.Options{
			TargetPrecision:  1.01,
			PrecisionStep:    0.05,
			ResolutionLevels: []int{10},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAblation(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	b.ReportAllocs()
	blk, _ := workload.Find(workload.MustTPCHBlocks(1), "Q3")
	model := costmodel.Default()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{Model: model, ResolutionLevels: 5, TargetPrecision: 1.01, PrecisionStep: 0.05}
		mutate(&cfg)
		opt := core.MustNewOptimizer(blk.Query, cfg)
		for r := 0; r < 5; r++ {
			opt.Optimize(nil, r)
		}
	}
}

// Ablation baseline for the flags below (DESIGN.md D2–D6).
func BenchmarkAblationDefault(b *testing.B) {
	benchAblation(b, func(*core.Config) {})
}

// Ablation D2: pruning against all resolutions instead of ≤ r.
func BenchmarkAblationPruneAll(b *testing.B) {
	benchAblation(b, func(cfg *core.Config) { cfg.PruneAgainstAll = true })
}

// Ablation D3: Δ filter disabled (pair memo only).
func BenchmarkAblationNoDelta(b *testing.B) {
	benchAblation(b, func(cfg *core.Config) { cfg.DisableDeltaFilter = true })
}

// Ablation D5: the paper's literal pruning, retaining globally
// redundant (exactly dominated) plans as candidates.
func BenchmarkAblationRetainDominated(b *testing.B) {
	benchAblation(b, func(cfg *core.Config) { cfg.RetainDominatedCandidates = true })
}

// Ablation D6: visible-frontier filtering disabled in Fresh.
func BenchmarkAblationNoFrontierFilter(b *testing.B) {
	benchAblation(b, func(cfg *core.Config) { cfg.DisableVisibleFrontierFilter = true })
}

// Ablation D4: cell-index base sweep.
func BenchmarkAblationCellBase(b *testing.B) {
	for _, base := range []float64{1.25, 2, 4, 16} {
		base := base
		b.Run(fmt.Sprintf("base=%g", base), func(b *testing.B) {
			benchAblation(b, func(cfg *core.Config) { cfg.CellBase = base })
		})
	}
}

// BenchmarkBoundsInteraction measures the interactive scenario the
// paper motivates but does not isolate in a figure: refinement,
// tightening, relaxation (the incremental advantage under user
// interaction).
func BenchmarkBoundsInteraction(b *testing.B) {
	blk, _ := workload.Find(workload.MustTPCHBlocks(1), "Q5")
	model := costmodel.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{Model: model, ResolutionLevels: 5, TargetPrecision: 1.01, PrecisionStep: 0.05}
		opt := core.MustNewOptimizer(blk.Query, cfg)
		for r := 0; r < 5; r++ {
			opt.Optimize(nil, r)
		}
		frontier := opt.Results(nil, 4)
		if len(frontier) == 0 {
			b.Fatal("empty frontier")
		}
		tight := frontier[0].Cost.Scale(1.2)
		for r := 0; r < 5; r++ {
			opt.Optimize(tight, r)
		}
		for r := 0; r < 5; r++ {
			opt.Optimize(nil, r)
		}
	}
}

// BenchmarkExhaustiveVsApprox quantifies why approximation is needed at
// all (the paper's Section 1 motivation): exact Pareto DP versus the
// one-shot approximation on a mid-size block.
func BenchmarkExhaustiveVsApprox(b *testing.B) {
	blk, _ := workload.Find(workload.MustTPCHBlocks(1), "Q10")
	model := costmodel.Default()
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := baseline.Exhaustive(blk.Query, model, nil)
			if len(res.Final(blk.Query)) == 0 {
				b.Fatal("empty frontier")
			}
		}
	})
	b.Run("oneshot-1.01", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := baseline.OneShot(blk.Query, model, 1.01, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Final(blk.Query)) == 0 {
				b.Fatal("empty frontier")
			}
		}
	})
}

// BenchmarkDensitySweep demonstrates the mechanism behind the paper's
// Figure-4 magnitudes (DESIGN.md D7): the baselines' linear-scan
// pruning degrades as frontiers densify while IAMA's indexed pruning
// does not, so the relative advantage grows with the number of
// sampling variants per table.
func BenchmarkDensitySweep(b *testing.B) {
	for _, rates := range []int{2, 6, 12} {
		rates := rates
		b.Run(fmt.Sprintf("rates=%d", rates), func(b *testing.B) {
			b.ReportAllocs()
			var iamaNS, mlNS, osNS float64
			for i := 0; i < b.N; i++ {
				points, err := harness.DensitySweep(4, []int{rates}, 5, 1.01, 0.1)
				if err != nil {
					b.Fatal(err)
				}
				p := points[0]
				iamaNS += float64(p.IAMAAvg.Nanoseconds())
				mlNS += float64(p.MemorylessAvg.Nanoseconds())
				osNS += float64(p.OneShot.Nanoseconds())
				b.ReportMetric(float64(p.FinalFrontier), "frontier-plans")
			}
			n := float64(b.N)
			b.ReportMetric(iamaNS/n, "iama-ns")
			b.ReportMetric(mlNS/n, "memoryless-ns")
			if iamaNS > 0 {
				b.ReportMetric(mlNS/iamaNS, "ml/iama")
				b.ReportMetric(osNS/iamaNS, "os/iama")
			}
		})
	}
}

// benchServiceSessions drives `sessions` concurrent anytime-optimization
// sessions through the multi-tenant service to target precision and
// reports throughput plus frontier-poll latency percentiles. With
// warmCache, every query shape is pre-converged once before the timed
// loop so all sessions hit the warm-start cache; without it the cache
// is disabled entirely.
func benchServiceSessions(b *testing.B, sessions int, warmCache bool) {
	b.Helper()
	b.ReportAllocs()
	blocks := workload.MustTPCHBlocks(1)
	// Workload spec shared with cmd/benchjson (harness.ServiceBench*),
	// so BENCH_core.json records the same benchmark.
	names := harness.ServiceBenchNames()
	svc, err := service.New(harness.ServiceBenchConfig(warmCache))
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Shutdown()

	// WaitTarget blocks on the service's step-completion broadcast, so
	// neither the warm-up nor the timed sessions burn worker cycles in
	// a poll loop (they used to spin on Poll at 50µs intervals, which
	// both wasted a core and perturbed the latency percentiles).
	if warmCache {
		for _, name := range names {
			blk, _ := workload.Find(blocks, name)
			id, err := svc.Create(blk.Query)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.WaitTarget(id); err != nil {
				b.Fatal(err)
			}
			if err := svc.Close(id); err != nil {
				b.Fatal(err)
			}
		}
	}

	driveServiceSessions(b, svc, blocks, names, sessions, warmCache)
}

// driveServiceSessions is the shared timed loop of the service
// benchmarks: b.N batches of `sessions` concurrent create→converge→
// close session lifecycles over the caller's workload mix.
func driveServiceSessions(b *testing.B, svc *service.Service, blocks []workload.Block, names []string, sessions int, warmCache bool) {
	b.Helper()
	var mu sync.Mutex
	var pollLats, firstLats []time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				blk, _ := workload.Find(blocks, names[s%len(names)])
				id, err := svc.Create(blk.Query)
				if err != nil {
					errs <- err
					return
				}
				pollStart := time.Now()
				st, err := svc.WaitTarget(id)
				pollLat := time.Since(pollStart)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				pollLats = append(pollLats, pollLat)
				firstLats = append(firstLats, st.FirstFrontier)
				mu.Unlock()
				errs <- svc.Close(id)
			}(s)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	total := float64(b.N * sessions)
	b.ReportMetric(total/b.Elapsed().Seconds(), "sessions/sec")
	b.ReportMetric(float64(harness.Percentile(firstLats, 0.95).Nanoseconds()), "p95-first-frontier-ns")
	b.ReportMetric(float64(harness.Percentile(pollLats, 0.95).Nanoseconds()), "p95-converge-ns")
	if warmCache {
		st := svc.Stats()
		b.ReportMetric(float64(st.Cache.Hits), "cache-hits")
	}
}

// BenchmarkServiceSessions measures multi-tenant service throughput and
// p95 latency at 1, 8 and 64 concurrent sessions, with and without the
// warm-start plan cache (the ROADMAP's serve-many-users direction).
func BenchmarkServiceSessions(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		for _, warm := range []bool{false, true} {
			label := "cold"
			if warm {
				label = "warm"
			}
			b.Run(fmt.Sprintf("sessions=%d/%s", n, label), func(b *testing.B) {
				benchServiceSessions(b, n, warm)
			})
		}
	}
}

// benchServiceIsomorphic measures the cross-shape warm-start tier on a
// workload with zero exact repeats and 100% shape repeats: every
// session optimizes a distinct table-ID-permuted variant of one base
// block. Three modes bound the result:
//
//	iso    cache warmed with the base variant only — every session is
//	       an isomorphic (canonical-tier) hit restored via remap;
//	exact  the driven variants themselves pre-converged — every
//	       session is an exact-tier hit (the warm upper bound);
//	cold   cache disabled (the lower bound).
//
// The acceptance target is iso within 2x of exact and ≥5x over cold.
func benchServiceIsomorphic(b *testing.B, sessions int, mode string) {
	b.Helper()
	b.ReportAllocs()
	pool, err := harness.ServiceIsoBenchPool()
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.ServiceBenchIsoConfig()
	if mode == "cold" {
		cfg = harness.ServiceBenchConfig(false)
	}
	newSvc := func() *service.Service {
		svc, err := service.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		switch mode {
		case "iso":
			// Warm only the base: the canonical tier serves the rest.
			if err := harness.ConvergeOnce(svc, pool[0].Query); err != nil {
				b.Fatal(err)
			}
		case "exact":
			// Pre-converge exactly the variants the timed loop drives.
			if _, _, err := harness.DriveIsoSessions(svc, pool, 0, sessions); err != nil {
				b.Fatal(err)
			}
		case "cold":
		default:
			b.Fatalf("unknown mode %q", mode)
		}
		return svc
	}
	svc := newSvc()
	defer func() { svc.Shutdown() }()
	var exactHits, isoHits, isoStarts uint64
	var remapNS time.Duration
	account := func(svc *service.Service) {
		st := svc.Stats()
		exactHits += st.Cache.ExactHits
		isoHits += st.Cache.IsoHits
		isoStarts += st.IsoWarmStarts
		remapNS += st.RemapTotal
	}
	warmupHits := svc.Stats().Cache // exclude the warm-up drive's hits
	cursor := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := cursor
		if mode == "exact" {
			start = 0 // repeat the pre-converged slice: all exact hits
		} else if cursor+sessions > len(pool)-1 {
			// The variant pool would wrap and earlier variants would hit
			// the exact tier, corrupting the "zero exact repeats"
			// premise under go test's adaptive b.N. Restart from a
			// fresh service (and cursor) outside the timed region.
			b.StopTimer()
			account(svc)
			exactHits -= warmupHits.ExactHits // warm-up drives repeat per service
			isoHits -= warmupHits.IsoHits
			svc.Shutdown()
			svc = newSvc()
			cursor, start = 0, 0
			b.StartTimer()
		}
		next, _, err := harness.DriveIsoSessions(svc, pool, start, sessions)
		if err != nil {
			b.Fatal(err)
		}
		cursor = next
	}
	b.StopTimer()
	account(svc)
	exactHits -= warmupHits.ExactHits
	isoHits -= warmupHits.IsoHits
	total := float64(b.N * sessions)
	b.ReportMetric(total/b.Elapsed().Seconds(), "sessions/sec")
	b.ReportMetric(float64(exactHits)/float64(b.N), "exact-hits/op")
	b.ReportMetric(float64(isoHits)/float64(b.N), "iso-hits/op")
	if isoStarts > 0 {
		b.ReportMetric(float64(remapNS.Nanoseconds())/float64(isoStarts), "remap-ns/hit")
	}
}

// BenchmarkServiceIsomorphic measures warm-start throughput when no
// query ever repeats exactly but every query's shape repeats — the
// fleet-scale pattern the canonical cache tier exists for (ROADMAP
// "Cross-shape cache reuse").
func BenchmarkServiceIsomorphic(b *testing.B) {
	for _, mode := range []string{"iso", "exact", "cold"} {
		b.Run(fmt.Sprintf("sessions=64/%s", mode), func(b *testing.B) {
			benchServiceIsomorphic(b, 64, mode)
		})
	}
}

// benchServiceRestart measures the restart-heavy scenario the snapshot
// store exists for: every iteration tears the service down and
// rebuilds it before driving a batch of sessions. Three modes bound
// the result:
//
//	cold  rebuilt with no store — every restart pays the cold-start
//	      cliff (the lower bound);
//	disk  rebuilt on a pre-warmed store directory — the replay
//	      pre-populates the cache, so sessions warm-start across the
//	      restart;
//	mem   never restarted, cache in memory (the upper bound).
//
// The acceptance target is disk first-frontier p95 within 2x of mem
// and ≥5x better than cold.
func benchServiceRestart(b *testing.B, sessions int, mode string) {
	b.Helper()
	b.ReportAllocs()
	blocks := workload.MustTPCHBlocks(1)
	names := harness.ServiceBenchNames()
	var dir string
	newSvc := func() *service.Service {
		cfg := harness.ServiceBenchConfig(mode == "mem")
		if mode == "disk" {
			cfg = harness.ServiceBenchPersistConfig(dir)
		}
		svc, err := service.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return svc
	}
	var memSvc *service.Service
	switch mode {
	case "disk":
		dir = b.TempDir()
		if err := harness.WarmPersistStore(dir); err != nil {
			b.Fatal(err)
		}
	case "mem":
		memSvc = newSvc()
		defer memSvc.Shutdown()
		for _, name := range names {
			blk, _ := workload.Find(blocks, name)
			if err := harness.ConvergeOnce(memSvc, blk.Query); err != nil {
				b.Fatal(err)
			}
		}
	case "cold":
	default:
		b.Fatalf("unknown mode %q", mode)
	}
	var firstLats []time.Duration
	var replayed uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := memSvc
		if svc == nil {
			svc = newSvc() // the restart under measurement (incl. replay)
		}
		// Collect the previous iteration's garbage (torn-down service,
		// replay buffers, finished sessions) before the drive, so the
		// latency percentiles measure serving, not a GC sweep landing
		// mid-batch on a single-core host and smearing the tail. All
		// three modes pay the same collection point.
		runtime.GC()
		_, firsts, err := harness.DriveSessionsFF(svc, blocks, names, sessions)
		if err != nil {
			b.Fatal(err)
		}
		firstLats = append(firstLats, firsts...)
		if svc != memSvc {
			replayed += svc.Stats().Store.Loaded
			svc.Shutdown()
		}
	}
	b.StopTimer()
	total := float64(b.N * sessions)
	b.ReportMetric(total/b.Elapsed().Seconds(), "sessions/sec")
	b.ReportMetric(float64(harness.Percentile(firstLats, 0.95).Nanoseconds()), "p95-first-frontier-ns")
	b.ReportMetric(float64(replayed)/float64(b.N), "replayed/op")
}

// BenchmarkServiceRestart measures first-frontier latency and
// throughput when the service restarts between session batches, with
// the warm-start cache rebuilt from the persistent snapshot store
// versus cold restarts and a never-restarted in-memory-warm control
// (ROADMAP "Persistent warm-start cache").
func BenchmarkServiceRestart(b *testing.B) {
	for _, mode := range []string{"cold", "disk", "mem"} {
		b.Run(fmt.Sprintf("sessions=64/%s", mode), func(b *testing.B) {
			benchServiceRestart(b, 64, mode)
		})
	}
}

// benchServiceContention drives the cold-cache session workload through
// a service with an explicit shard count, reporting throughput plus the
// scheduler's contention counters. GOMAXPROCS (and with it the worker
// pool and the shards=auto count) comes from the -cpu flag.
func benchServiceContention(b *testing.B, sessions, shards int) {
	b.Helper()
	b.ReportAllocs()
	svc, err := service.New(harness.ServiceBenchContentionConfig(shards))
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Shutdown()
	driveServiceSessions(b, svc, workload.MustTPCHBlocks(1), harness.ServiceBenchNames(), sessions, false)
	st := svc.Stats()
	var steals, pops uint64
	for _, ss := range st.Shards {
		steals += ss.Steals
		pops += ss.Pops
	}
	b.ReportMetric(float64(steals), "steals")
	if pops > 0 {
		b.ReportMetric(float64(st.Steps)/float64(pops), "steps/pop")
	}
	b.ReportMetric(float64(st.StepGapP99.Nanoseconds()), "p99-step-gap-ns")
}

// BenchmarkServiceContention isolates the multi-core scaling of the
// sharded scheduler: the same cold 64–512-session workload against the
// single-queue control (shards=1) and the per-core sharded
// configuration (shards=auto). Run it across core counts with
//
//	go test -cpu 1,4,8 -bench 'BenchmarkServiceContention' -benchtime 3x -run '^$' .
//
// The acceptance target is sharded ≥2x the shards=1 control at ≥4
// cores and within noise of it at 1 core.
func BenchmarkServiceContention(b *testing.B) {
	for _, cfg := range []struct {
		label  string
		shards int
	}{{"single", 1}, {"sharded", 0}} {
		for _, n := range []int{64, 512} {
			b.Run(fmt.Sprintf("shards=%s/sessions=%d", cfg.label, n), func(b *testing.B) {
				benchServiceContention(b, n, cfg.shards)
			})
		}
	}
}
